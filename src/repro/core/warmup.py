"""The shared Scout + Explorer warm-up pipeline, with record/replay.

Both :class:`~repro.core.delorean.DeLorean` and
:class:`~repro.core.dse.DesignSpaceExploration` spend most of their work
in the same place: per detailed region, a Scout collects the key
cachelines and an Explorer chain collects their reuse distances plus the
vicinity distribution.  Everything those passes produce is
*microarchitecture-independent* (Section 3.3) — the cache hierarchy only
enters at the Analyst — so the warm-up products for a workload/plan/seed
are reusable across every LLC configuration of a sweep.

:class:`WarmupPipeline` makes that reuse concrete.  In **live** mode it
runs the actual passes and records, per region, the key reuse distances,
the vicinity histogram state, the per-pass stage times and the summary
statistics; at the end it publishes the whole
:class:`WarmupBundle` (including each pass's cost-ledger breakdown) to
the artifact store.  In **replay** mode — a store hit on the bundle's
fingerprint, which deliberately excludes the hierarchy — it never builds
a machine at all: regions are served from the bundle and the consumer's
results are bit-identical to a live run's, because every float the live
run would have produced (stage times, ledger categories, sampler
totals) was recorded rather than remodeled.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.core.explorer import ExplorerChain
from repro.core.scout import ScoutPass
from repro.core.vicinity import VicinitySampler
from repro.core.warming import DirectedCapacityPredictor
from repro.statmodel.histogram import ReuseHistogram
from repro.vff.costmodel import TimeLedger


@dataclass
class RegionWarmup:
    """Everything one region's warm-up passes produced.

    Arrays are stored in the Scout's key order (ascending line id), so a
    replayed predictor iterates identically to a live one.
    """

    #: Key cachelines (Scout order) and their backward reuse distances
    #: (-1 marks a cold line never found in the warm-up interval).
    key_lines: np.ndarray
    key_distances: np.ndarray
    #: Vicinity histogram state (sorted distances, weights, cold mass).
    vicinity_distances: np.ndarray
    vicinity_weights: np.ndarray
    vicinity_cold: float
    #: Summary statistics the strategies aggregate into result extras.
    n_warming_resolved: int
    n_unresolved: int
    engaged: int
    resolved_by: list
    true_stops: int
    false_stops: int
    #: Modeled seconds each warm-up pass (Scout, Explorer-1..N) spent on
    #: this region — the pipeline-schedule stage times.
    stage_seconds: list = field(default_factory=list)

    @property
    def n_key_lines(self):
        return int(self.key_lines.shape[0])

    @property
    def n_key_collected(self):
        """Key lines whose reuse distance was actually found."""
        return int((np.asarray(self.key_distances) >= 0).sum())

    def vicinity_histogram(self):
        return ReuseHistogram.from_state(
            self.vicinity_distances, self.vicinity_weights,
            self.vicinity_cold)

    def predictor(self):
        """The region's DSW capacity predictor, rebuilt from the record.

        Both live and replayed runs construct the predictor from the
        recorded arrays, so the two paths cannot diverge.
        """
        distances = {
            int(line): int(distance)
            for line, distance in zip(self.key_lines.tolist(),
                                      np.asarray(self.key_distances).tolist())
        }
        return DirectedCapacityPredictor(distances,
                                         self.vicinity_histogram())


@dataclass
class WarmupBundle:
    """A full warm-up record: every region plus per-pass cost ledgers."""

    regions: list
    #: Final ``{category: seconds}`` ledger of each warm-up pass, in pass
    #: order (Scout first).
    pass_categories: list
    #: Per-Explorer vicinity sampler totals (sampler order).
    sampler_paper: list
    sampler_model: list


class WarmupPipeline:
    """Run — or replay — the Scout/Explorer warm-up for a whole plan.

    The pipeline executes on an
    :class:`~repro.core.context.ExecutionContext`: the context supplies
    the trace (possibly memory-mapped), the (possibly spilled) index,
    the artifact store and the seed, so one context threads identically
    through DeLorean, DSE and the warm-up machinery.
    """

    def __init__(self, rng_label, context, plan, explorer_specs,
                 vicinity_density, vicinity_boost, base_meter):
        self.rng_label = rng_label
        self.context = context
        self.workload = context.workload
        self.plan = plan
        self.explorer_specs = tuple(explorer_specs)
        self.vicinity_density = float(vicinity_density)
        self.vicinity_boost = float(vicinity_boost)
        self.base_meter = base_meter
        self.seed = context.seed
        self.store = context.store
        self.n_passes = 1 + len(self.explorer_specs)
        # The address excludes the cache hierarchy on purpose: warm-up
        # products are microarchitecture-independent, so every LLC
        # configuration of a sweep shares one bundle.
        self.key = {
            "artifact": "warmup-bundle",
            "pipeline": rng_label,
            "plan": plan,
            "explorers": list(self.explorer_specs),
            "vicinity_density": self.vicinity_density,
            "vicinity_boost": self.vicinity_boost,
            "seed": self.seed,
        }
        # Imported traces are addressed purely by content — the registry
        # name is a label, so a rename replays the same bundle.
        # Synthetic keys keep their historical name/seed identity.
        trace_fp = getattr(self.workload, "trace_fingerprint", None)
        if trace_fp is not None:
            self.key["trace_fingerprint"] = trace_fp
        else:
            self.key["workload"] = self.workload.name
            self.key["workload_seed"] = self.workload.seed
        self.bundle = (self.store.load(self.key, label="warmup")
                       if self.store is not None else None)
        self.replayed = self.bundle is not None

    # -- execution -----------------------------------------------------------

    def run_all(self):
        """The per-region warm-up products, live or replayed."""
        if self.bundle is None:
            self._run_live()
        return self.bundle.regions

    def _run_live(self):
        scout_machine = self.context.machine(self.base_meter.fork())
        explorer_machines = [
            self.context.machine(self.base_meter.fork())
            for _ in self.explorer_specs]
        machines = [scout_machine] + explorer_machines

        rng = self.context.rng(self.rng_label)
        samplers = [
            VicinitySampler(machine, density=self.vicinity_density,
                            density_boost=self.vicinity_boost, rng=rng,
                            footprint_scale=self.plan.footprint_scale)
            for machine in explorer_machines]
        scout = ScoutPass(scout_machine)
        chain = ExplorerChain(explorer_machines, self.explorer_specs,
                              vicinity_samplers=samplers,
                              footprint_scale=self.plan.footprint_scale)

        # Scouts first: the Scout pass is RNG-free and touches only its
        # own machine, so every region's key set is known before any
        # Explorer runs — which lets the chain batch each Explorer
        # level's window profiles across all regions in one index pass.
        # Explorer execution below keeps the original region-major
        # order (the vicinity samplers share one RNG), consuming the
        # precomputed profiles; both orders are bit-identical.
        region_specs = list(self.plan.regions())
        reports = []
        scout_seconds = []
        for spec in region_specs:
            mark = scout_machine.meter.ledger.total_seconds
            reports.append(scout.run_region(spec))
            scout_seconds.append(
                scout_machine.meter.ledger.total_seconds - mark)
        from repro import kernels

        planned = (chain.plan_regions(region_specs, reports)
                   if kernels.get_backend() != "scalar" else
                   [None] * len(region_specs))

        regions = []
        for spec, report, region_planned, scout_delta in zip(
                region_specs, reports, planned, scout_seconds):
            marks = [m.meter.ledger.total_seconds
                     for m in explorer_machines]
            vicinity = ReuseHistogram()
            exploration = chain.run_region(spec, report, vicinity,
                                           planned=region_planned)
            key_distances = chain.key_reuse_distances(report, exploration)
            stage_seconds = [scout_delta] + [
                machine.meter.ledger.total_seconds - marks[k]
                for k, machine in enumerate(explorer_machines)]

            n_keys = len(key_distances)
            vicinity_distances, vicinity_weights, vicinity_cold = \
                vicinity.state()
            regions.append(RegionWarmup(
                key_lines=np.fromiter(
                    key_distances.keys(), np.int64, count=n_keys),
                key_distances=np.fromiter(
                    key_distances.values(), np.int64, count=n_keys),
                vicinity_distances=vicinity_distances,
                vicinity_weights=vicinity_weights,
                vicinity_cold=vicinity_cold,
                n_warming_resolved=len(report.warming_resolved),
                n_unresolved=len(exploration.unresolved),
                engaged=exploration.engaged,
                resolved_by=list(exploration.resolved_by),
                true_stops=exploration.true_stops,
                false_stops=exploration.false_stops,
                stage_seconds=stage_seconds,
            ))

        self.bundle = WarmupBundle(
            regions=regions,
            pass_categories=[dict(m.meter.ledger.seconds_by_category)
                             for m in machines],
            sampler_paper=[s.collected_paper_equivalent for s in samplers],
            sampler_model=[s.collected_model for s in samplers],
        )
        if self.store is not None:
            self.store.save(self.key, self.bundle, label="warmup")

    # -- post-run accessors ---------------------------------------------------

    def stage_times(self):
        """Per-pass lists of per-region stage seconds (Scout first)."""
        return [[region.stage_seconds[k] for region in self.bundle.regions]
                for k in range(self.n_passes)]

    def pass_ledgers(self):
        """One :class:`TimeLedger` per warm-up pass, in pass order."""
        ledgers = []
        for categories in self.bundle.pass_categories:
            ledger = TimeLedger()
            ledger.seconds_by_category = dict(categories)
            ledgers.append(ledger)
        return ledgers

    @property
    def vicinity_paper(self):
        return sum(self.bundle.sampler_paper)

    @property
    def vicinity_model(self):
        return sum(self.bundle.sampler_model)


class IncrementalWarmup:
    """Per-region refinable Scout/Explorer execution for live feeds.

    Carries exactly the state :meth:`WarmupPipeline._run_live`
    accumulates — per-pass machines, the shared vicinity RNG, the
    Explorer chain — but advances one region per :meth:`refine` call as
    the feed covers it.  Bit-identity with a batch pipeline over the
    same prefix holds because the Scout is RNG-free, the vicinity
    samplers consume the shared stream strictly region-major in both
    orders, and the batch path's cross-region window planning is a pure
    index query (values identical to the unplanned per-region walk).

    Exposes the same post-run accessors as :class:`WarmupPipeline`
    (``stage_times``/``pass_ledgers``/``vicinity_*``) evaluated over the
    regions refined so far, so result assembly is shared code.
    """

    def __init__(self, rng_label, context, explorer_specs,
                 vicinity_density, vicinity_boost, base_meter,
                 footprint_scale):
        self.explorer_specs = tuple(explorer_specs)
        self.n_passes = 1 + len(self.explorer_specs)
        self.scout_machine = context.machine(base_meter.fork())
        self.explorer_machines = [context.machine(base_meter.fork())
                                  for _ in self.explorer_specs]
        self.machines = [self.scout_machine] + self.explorer_machines
        rng = context.rng(rng_label)
        self.samplers = [
            VicinitySampler(machine, density=float(vicinity_density),
                            density_boost=float(vicinity_boost), rng=rng,
                            footprint_scale=footprint_scale)
            for machine in self.explorer_machines]
        self.scout = ScoutPass(self.scout_machine)
        self.chain = ExplorerChain(self.explorer_machines,
                                   self.explorer_specs,
                                   vicinity_samplers=self.samplers,
                                   footprint_scale=footprint_scale)
        self.regions = []

    def refine(self, spec):
        """Scout + explore one region; returns its :class:`RegionWarmup`."""
        mark = self.scout_machine.meter.ledger.total_seconds
        report = self.scout.run_region(spec)
        scout_delta = (self.scout_machine.meter.ledger.total_seconds
                       - mark)

        marks = [m.meter.ledger.total_seconds
                 for m in self.explorer_machines]
        vicinity = ReuseHistogram()
        exploration = self.chain.run_region(spec, report, vicinity,
                                            planned=None)
        key_distances = self.chain.key_reuse_distances(report, exploration)
        stage_seconds = [scout_delta] + [
            machine.meter.ledger.total_seconds - marks[k]
            for k, machine in enumerate(self.explorer_machines)]

        n_keys = len(key_distances)
        vicinity_distances, vicinity_weights, vicinity_cold = \
            vicinity.state()
        region = RegionWarmup(
            key_lines=np.fromiter(
                key_distances.keys(), np.int64, count=n_keys),
            key_distances=np.fromiter(
                key_distances.values(), np.int64, count=n_keys),
            vicinity_distances=vicinity_distances,
            vicinity_weights=vicinity_weights,
            vicinity_cold=vicinity_cold,
            n_warming_resolved=len(report.warming_resolved),
            n_unresolved=len(exploration.unresolved),
            engaged=exploration.engaged,
            resolved_by=list(exploration.resolved_by),
            true_stops=exploration.true_stops,
            false_stops=exploration.false_stops,
            stage_seconds=stage_seconds,
        )
        self.regions.append(region)
        return region

    def bundle(self):
        """A :class:`WarmupBundle` snapshot of the state so far — the
        watermark-publishable twin of the batch pipeline's record."""
        return WarmupBundle(
            regions=list(self.regions),
            pass_categories=[dict(m.meter.ledger.seconds_by_category)
                             for m in self.machines],
            sampler_paper=[s.collected_paper_equivalent
                           for s in self.samplers],
            sampler_model=[s.collected_model for s in self.samplers],
        )

    # -- batch-pipeline-compatible accessors -------------------------------

    def stage_times(self):
        return [[region.stage_seconds[k] for region in self.regions]
                for k in range(self.n_passes)]

    def pass_ledgers(self):
        ledgers = []
        for machine in self.machines:
            ledger = TimeLedger()
            ledger.seconds_by_category = dict(
                machine.meter.ledger.seconds_by_category)
            ledgers.append(ledger)
        return ledgers

    @property
    def vicinity_paper(self):
        return sum(s.collected_paper_equivalent for s in self.samplers)

    @property
    def vicinity_model(self):
        return sum(s.collected_model for s in self.samplers)
