"""DeLorean: directed statistical warming through time traveling.

The paper's primary contribution, built on the substrates in
``repro.trace`` / ``repro.caches`` / ``repro.statmodel`` / ``repro.vff`` /
``repro.cpu`` / ``repro.sampling``:

* :class:`~repro.core.scout.ScoutPass` — fast-forwards to each detailed
  region and records its *key cachelines* (plus reuses already visible in
  the detailed-warming window).
* :class:`~repro.core.explorer.ExplorerChain` — goes back in time:
  progressively deeper directed-profiling passes collect each key
  cacheline's last reuse (Explorer-1 via functional simulation, deeper
  Explorers via virtualized directed profiling with page-protection
  watchpoints).
* :class:`~repro.core.vicinity.VicinitySampler` — sparse random reuse
  sampling inside the engaged explorer windows.
* :class:`~repro.core.warming.DirectedCapacityPredictor` — DSW's capacity
  decision: key reuse distance -> StatStack stack distance vs cache size.
* :class:`~repro.core.analyst.AnalystPass` — detailed evaluation of the
  region under the Figure 3 classifier.
* :class:`~repro.core.delorean.DeLorean` — the full pipelined
  time-traveling strategy (Figure 4).
* :class:`~repro.core.dse.DesignSpaceExploration` — many parallel
  Analysts amortizing one warm-up (Section 6.4.2).
"""

from repro.core.context import AccessWindow, ExecutionContext
from repro.core.scout import ScoutPass, ScoutReport
from repro.core.explorer import ExplorerChain, ExplorerSpec, ExplorationResult
from repro.core.vicinity import VicinitySampler
from repro.core.warming import DirectedCapacityPredictor, COLD_DISTANCE
from repro.core.analyst import AnalystPass
from repro.core.delorean import DeLorean
from repro.core.dse import DesignSpaceExploration, DSEReport
from repro.core.naive import NaiveDirectedWarming
from repro.core.coherence import (
    CacheTopology,
    KeyAccessOrigin,
    MISS_COHERENCE,
    ThreadAwareCapacityPredictor,
)
from repro.core.pipeline import pipeline_schedule

__all__ = [
    "AccessWindow",
    "ExecutionContext",
    "ScoutPass",
    "ScoutReport",
    "ExplorerChain",
    "ExplorerSpec",
    "ExplorationResult",
    "VicinitySampler",
    "DirectedCapacityPredictor",
    "COLD_DISTANCE",
    "AnalystPass",
    "DeLorean",
    "DesignSpaceExploration",
    "DSEReport",
    "NaiveDirectedWarming",
    "CacheTopology",
    "KeyAccessOrigin",
    "MISS_COHERENCE",
    "ThreadAwareCapacityPredictor",
    "pipeline_schedule",
]
