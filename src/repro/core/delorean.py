"""DeLorean: the full time-traveling sampled-simulation strategy.

Orchestrates the Figure 4 pipeline for every detailed region:

1. **Scout** fast-forwards ahead and records the key cachelines;
2. **Explorer-1..N** go back in time and collect the key reuse distances
   (plus vicinity samples) with progressively deeper directed profiling;
3. **Analyst** performs the detailed simulation, classifying every memory
   request with directed statistical warming (Figure 3).

Each pass is modeled as its own gem5/KVM process with its own cost
ledger; regions are processed in pipelined fashion, so the run's
wall-clock follows the pipeline recurrence of
:func:`~repro.core.pipeline.pipeline_schedule` rather than the sum of all
passes — this is how the reduction in profiling work becomes the 5.7x
speedup over CoolSim and the 126 MIPS headline.

The Scout/Explorer work is delegated to
:class:`~repro.core.warmup.WarmupPipeline`: with an artifact ``store``
attached, the warm-up products (which are microarchitecture-independent)
are persisted on first computation and replayed bit-identically for any
later run of the same workload/plan/seed at a different LLC
configuration — only the Analyst re-executes.
"""

import numpy as np

from repro.core.analyst import AnalystPass
from repro.core.explorer import DEFAULT_EXPLORERS
from repro.core.pipeline import pipeline_schedule
from repro.core.vicinity import DEFAULT_DENSITY
from repro.core.warmup import WarmupPipeline
from repro.cpu.prefetch import StridePrefetcher
from repro.sampling.base import StrategyBase
from repro.sampling.results import StrategyResult
from repro.vff.costmodel import CostMeter, TimeLedger


class DeLorean(StrategyBase):
    """Directed statistical warming through time traveling."""

    name = "DeLorean"

    def __init__(self, processor_config=None, explorer_specs=DEFAULT_EXPLORERS,
                 vicinity_density=DEFAULT_DENSITY, vicinity_boost=200.0,
                 prefetcher=False, mshr_window=24):
        super().__init__(processor_config)
        self.explorer_specs = tuple(explorer_specs)
        self.vicinity_density = float(vicinity_density)
        self.vicinity_boost = float(vicinity_boost)
        self.prefetcher_enabled = prefetcher
        self.mshr_window = mshr_window

    def run(self, workload, plan, hierarchy_config, index=None, seed=0,
            store=None, context=None):
        context = self.context_for(workload, index=index, seed=seed,
                                   store=store, context=context)
        base_meter = CostMeter(scale=plan.scale)

        warmup = WarmupPipeline(
            "delorean-vicinity", context, plan, self.explorer_specs,
            self.vicinity_density, self.vicinity_boost, base_meter)
        warm_regions = warmup.run_all()

        analyst_machine = context.machine(base_meter.fork())
        analyst = AnalystPass(
            analyst_machine, hierarchy_config,
            processor_config=self.processor_config,
            prefetcher_factory=((lambda: StridePrefetcher(n_streams=8))
                                if self.prefetcher_enabled else None),
            mshr_window=self.mshr_window,
            seed=context.seed,
            context=context,
        )

        analyst_times = []
        regions = []
        key_counts = []
        engaged = []
        resolved_by_totals = np.zeros(len(self.explorer_specs), dtype=np.int64)
        warming_resolved_total = 0
        cold_total = 0
        key_collected_total = 0
        stops_true = 0
        stops_false = 0

        for spec, warm in zip(plan.regions(), warm_regions):
            mark = analyst_machine.meter.ledger.total_seconds
            regions.append(analyst.run_region(spec, warm.predictor()))
            analyst_times.append(
                analyst_machine.meter.ledger.total_seconds - mark)

            key_counts.append(warm.n_key_lines)
            engaged.append(warm.engaged)
            resolved_by_totals += np.asarray(warm.resolved_by)
            warming_resolved_total += warm.n_warming_resolved
            cold_total += warm.n_unresolved
            key_collected_total += warm.n_key_collected
            stops_true += warm.true_stops
            stops_false += warm.false_stops

        stage_times = warmup.stage_times() + [analyst_times]
        _, wall_seconds = pipeline_schedule(stage_times)

        merged = CostMeter(params=base_meter.params, scale=plan.scale,
                           ledger=TimeLedger())
        warm_ledgers = warmup.pass_ledgers()
        for ledger in warm_ledgers:
            merged.ledger.merge(ledger)
        merged.ledger.merge(analyst_machine.meter.ledger)

        vicinity_paper = warmup.vicinity_paper
        vicinity_model = warmup.vicinity_model
        analyst_detailed = analyst_machine.meter.ledger.seconds_by_category.get(
            "detailed", 0.0)
        warming_seconds = (
            warm_ledgers[0].total_seconds
            + sum(ledger.total_seconds for ledger in warm_ledgers[1:]))

        return StrategyResult(
            strategy=self.name,
            workload=workload.name,
            regions=regions,
            meter=merged,
            paper_equivalent_instructions=plan.paper_equivalent_instructions,
            wall_seconds=wall_seconds,
            extras={
                "collected_reuse_distances":
                    key_collected_total + vicinity_paper,
                "key_reuse_distances": key_collected_total,
                "vicinity_paper_equivalent": vicinity_paper,
                "vicinity_model_samples": vicinity_model,
                "key_lines_per_region": key_counts,
                "explorers_engaged": engaged,
                "mean_explorers_engaged": float(np.mean(engaged)),
                "resolved_by_explorer": resolved_by_totals.tolist(),
                "resolved_in_warming": warming_resolved_total,
                "cold_key_lines": cold_total,
                "watchpoint_true_stops": stops_true,
                "watchpoint_false_stops": stops_false,
                "stage_times": [sum(t) for t in stage_times],
                "warming_seconds": warming_seconds,
                "analyst_detailed_seconds": analyst_detailed,
                "warmup_vs_detailed":
                    (warming_seconds / analyst_detailed
                     if analyst_detailed else float("inf")),
            },
        )
