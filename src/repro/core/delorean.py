"""DeLorean: the full time-traveling sampled-simulation strategy.

Orchestrates the Figure 4 pipeline for every detailed region:

1. **Scout** fast-forwards ahead and records the key cachelines;
2. **Explorer-1..N** go back in time and collect the key reuse distances
   (plus vicinity samples) with progressively deeper directed profiling;
3. **Analyst** performs the detailed simulation, classifying every memory
   request with directed statistical warming (Figure 3).

Each pass is modeled as its own gem5/KVM process with its own cost
ledger; regions are processed in pipelined fashion, so the run's
wall-clock follows the pipeline recurrence of
:func:`~repro.core.pipeline.pipeline_schedule` rather than the sum of all
passes — this is how the reduction in profiling work becomes the 5.7x
speedup over CoolSim and the 126 MIPS headline.

The Scout/Explorer work is delegated to
:class:`~repro.core.warmup.WarmupPipeline`: with an artifact ``store``
attached, the warm-up products (which are microarchitecture-independent)
are persisted on first computation and replayed bit-identically for any
later run of the same workload/plan/seed at a different LLC
configuration — only the Analyst re-executes.
"""

import numpy as np

from repro.core.analyst import AnalystPass
from repro.core.explorer import DEFAULT_EXPLORERS
from repro.core.pipeline import pipeline_schedule
from repro.core.vicinity import DEFAULT_DENSITY
from repro.core.warmup import IncrementalWarmup, WarmupPipeline
from repro.cpu.prefetch import StridePrefetcher
from repro.sampling.base import StrategyBase
from repro.sampling.results import StrategyResult
from repro.vff.costmodel import CostMeter, TimeLedger


class DeLorean(StrategyBase):
    """Directed statistical warming through time traveling."""

    name = "DeLorean"

    def __init__(self, processor_config=None, explorer_specs=DEFAULT_EXPLORERS,
                 vicinity_density=DEFAULT_DENSITY, vicinity_boost=200.0,
                 prefetcher=False, mshr_window=24):
        super().__init__(processor_config)
        self.explorer_specs = tuple(explorer_specs)
        self.vicinity_density = float(vicinity_density)
        self.vicinity_boost = float(vicinity_boost)
        self.prefetcher_enabled = prefetcher
        self.mshr_window = mshr_window

    def run(self, workload, plan, hierarchy_config, index=None, seed=0,
            store=None, context=None):
        context = self.context_for(workload, index=index, seed=seed,
                                   store=store, context=context)
        base_meter = CostMeter(scale=plan.scale)

        warmup = WarmupPipeline(
            "delorean-vicinity", context, plan, self.explorer_specs,
            self.vicinity_density, self.vicinity_boost, base_meter)
        warm_regions = warmup.run_all()

        analyst_machine = context.machine(base_meter.fork())
        analyst = self._analyst(context, hierarchy_config, analyst_machine)

        analyst_times = []
        regions = []
        for spec, warm in zip(plan.regions(), warm_regions):
            mark = analyst_machine.meter.ledger.total_seconds
            regions.append(analyst.run_region(spec, warm.predictor()))
            analyst_times.append(
                analyst_machine.meter.ledger.total_seconds - mark)

        return self._assemble_result(
            workload.name, plan, warmup, warm_regions, regions,
            analyst_times, analyst_machine.meter.ledger, base_meter)

    def begin(self, context, plan, hierarchy_config):
        """Start a refinable run (``refine`` per region, ``result`` at
        any watermark).

        Unlike :meth:`run` this never consults the warm-up bundle store
        — a live feed is by definition ahead of any recorded prefix —
        but every value it produces is pinned to the batch path: the
        warm-up passes are the batch pipeline's region loop
        (:class:`~repro.core.warmup.IncrementalWarmup`) and the result
        assembly is shared code.
        """
        return DeLoreanRun(self, context, plan, hierarchy_config)

    def _analyst(self, context, hierarchy_config, machine):
        return AnalystPass(
            machine, hierarchy_config,
            processor_config=self.processor_config,
            prefetcher_factory=((lambda: StridePrefetcher(n_streams=8))
                                if self.prefetcher_enabled else None),
            mshr_window=self.mshr_window,
            seed=context.seed,
            context=context,
        )

    def _assemble_result(self, workload_name, plan, warmup, warm_regions,
                         regions, analyst_times, analyst_ledger,
                         base_meter):
        """Aggregate warm-up records + analyst output into the result.

        ``warmup`` is anything exposing the pipeline accessors
        (``stage_times``/``pass_ledgers``/``vicinity_*``): the batch
        :class:`WarmupPipeline` or an
        :class:`~repro.core.warmup.IncrementalWarmup` mid-feed.  Shared
        by both paths so the live watermark results cannot drift from
        the batch assembly.
        """
        key_counts = []
        engaged = []
        resolved_by_totals = np.zeros(len(self.explorer_specs),
                                      dtype=np.int64)
        warming_resolved_total = 0
        cold_total = 0
        key_collected_total = 0
        stops_true = 0
        stops_false = 0
        for warm in warm_regions:
            key_counts.append(warm.n_key_lines)
            engaged.append(warm.engaged)
            resolved_by_totals += np.asarray(warm.resolved_by)
            warming_resolved_total += warm.n_warming_resolved
            cold_total += warm.n_unresolved
            key_collected_total += warm.n_key_collected
            stops_true += warm.true_stops
            stops_false += warm.false_stops

        stage_times = warmup.stage_times() + [analyst_times]
        _, wall_seconds = pipeline_schedule(stage_times)

        merged = CostMeter(params=base_meter.params, scale=plan.scale,
                           ledger=TimeLedger())
        warm_ledgers = warmup.pass_ledgers()
        for ledger in warm_ledgers:
            merged.ledger.merge(ledger)
        merged.ledger.merge(analyst_ledger)

        vicinity_paper = warmup.vicinity_paper
        vicinity_model = warmup.vicinity_model
        analyst_detailed = analyst_ledger.seconds_by_category.get(
            "detailed", 0.0)
        warming_seconds = (
            warm_ledgers[0].total_seconds
            + sum(ledger.total_seconds for ledger in warm_ledgers[1:]))

        return StrategyResult(
            strategy=self.name,
            workload=workload_name,
            regions=regions,
            meter=merged,
            paper_equivalent_instructions=plan.paper_equivalent_instructions,
            wall_seconds=wall_seconds,
            extras={
                "collected_reuse_distances":
                    key_collected_total + vicinity_paper,
                "key_reuse_distances": key_collected_total,
                "vicinity_paper_equivalent": vicinity_paper,
                "vicinity_model_samples": vicinity_model,
                "key_lines_per_region": key_counts,
                "explorers_engaged": engaged,
                "mean_explorers_engaged": float(np.mean(engaged)),
                "resolved_by_explorer": resolved_by_totals.tolist(),
                "resolved_in_warming": warming_resolved_total,
                "cold_key_lines": cold_total,
                "watchpoint_true_stops": stops_true,
                "watchpoint_false_stops": stops_false,
                "stage_times": [sum(t) for t in stage_times],
                "warming_seconds": warming_seconds,
                "analyst_detailed_seconds": analyst_detailed,
                "warmup_vs_detailed":
                    (warming_seconds / analyst_detailed
                     if analyst_detailed else float("inf")),
            },
        )


class DeLoreanRun:
    """Refinable DeLorean execution state for live feeds.

    Carries the warm-up passes (:class:`IncrementalWarmup`) and the
    Analyst machine across regions; :meth:`refine` advances all five
    pipeline stages over one region, :meth:`result` assembles the
    watermark's :class:`StrategyResult` through the same code as the
    batch path.
    """

    def __init__(self, strategy, context, plan, hierarchy_config):
        self.strategy = strategy
        self.context = context
        self.base_meter = CostMeter(scale=plan.scale)
        self.warmup = IncrementalWarmup(
            "delorean-vicinity", context, strategy.explorer_specs,
            strategy.vicinity_density, strategy.vicinity_boost,
            self.base_meter, plan.footprint_scale)
        self.analyst_machine = context.machine(self.base_meter.fork())
        self.analyst = strategy._analyst(context, hierarchy_config,
                                         self.analyst_machine)
        self.analyst_times = []
        self.regions = []

    def refine(self, spec):
        """Scout, explore and analyze one region."""
        warm = self.warmup.refine(spec)
        mark = self.analyst_machine.meter.ledger.total_seconds
        self.regions.append(
            self.analyst.run_region(spec, warm.predictor()))
        self.analyst_times.append(
            self.analyst_machine.meter.ledger.total_seconds - mark)
        return self.regions[-1]

    def bundle(self):
        """The warm-up bundle snapshot (watermark-publishable)."""
        return self.warmup.bundle()

    def result(self, plan):
        """The :class:`StrategyResult` over the regions refined so far."""
        return self.strategy._assemble_result(
            self.context.workload.name, plan, self.warmup,
            list(self.warmup.regions), list(self.regions),
            list(self.analyst_times), self.analyst_machine.meter.ledger,
            self.base_meter)
