"""DeLorean: the full time-traveling sampled-simulation strategy.

Orchestrates the Figure 4 pipeline for every detailed region:

1. **Scout** fast-forwards ahead and records the key cachelines;
2. **Explorer-1..N** go back in time and collect the key reuse distances
   (plus vicinity samples) with progressively deeper directed profiling;
3. **Analyst** performs the detailed simulation, classifying every memory
   request with directed statistical warming (Figure 3).

Each pass is modeled as its own gem5/KVM process with its own cost
ledger; regions are processed in pipelined fashion, so the run's
wall-clock follows the pipeline recurrence of
:func:`~repro.core.pipeline.pipeline_schedule` rather than the sum of all
passes — this is how the reduction in profiling work becomes the 5.7x
speedup over CoolSim and the 126 MIPS headline.
"""

import numpy as np

from repro.core.analyst import AnalystPass
from repro.core.explorer import DEFAULT_EXPLORERS, ExplorerChain
from repro.core.pipeline import pipeline_schedule
from repro.core.scout import ScoutPass
from repro.core.vicinity import DEFAULT_DENSITY, VicinitySampler
from repro.core.warming import DirectedCapacityPredictor
from repro.cpu.prefetch import StridePrefetcher
from repro.sampling.base import StrategyBase
from repro.sampling.results import StrategyResult
from repro.statmodel.histogram import ReuseHistogram
from repro.util.rng import child_rng
from repro.vff.costmodel import CostMeter, TimeLedger
from repro.vff.index import TraceIndex
from repro.vff.machine import VirtualMachine


class DeLorean(StrategyBase):
    """Directed statistical warming through time traveling."""

    name = "DeLorean"

    def __init__(self, processor_config=None, explorer_specs=DEFAULT_EXPLORERS,
                 vicinity_density=DEFAULT_DENSITY, vicinity_boost=200.0,
                 prefetcher=False, mshr_window=24):
        super().__init__(processor_config)
        self.explorer_specs = tuple(explorer_specs)
        self.vicinity_density = float(vicinity_density)
        self.vicinity_boost = float(vicinity_boost)
        self.prefetcher_enabled = prefetcher
        self.mshr_window = mshr_window

    def run(self, workload, plan, hierarchy_config, index=None, seed=0):
        trace = workload.trace
        if index is None:
            index = TraceIndex(trace)
        base_meter = CostMeter(scale=plan.scale)

        scout_machine = VirtualMachine(
            trace, meter=base_meter.fork(), index=index)
        explorer_machines = [
            VirtualMachine(trace, meter=base_meter.fork(), index=index)
            for _ in self.explorer_specs]
        analyst_machine = VirtualMachine(
            trace, meter=base_meter.fork(), index=index)

        rng = child_rng(seed, "delorean-vicinity", workload.name)
        samplers = [VicinitySampler(machine, density=self.vicinity_density,
                                    density_boost=self.vicinity_boost,
                                    rng=rng,
                                    footprint_scale=plan.footprint_scale)
                    for machine in explorer_machines]
        scout = ScoutPass(scout_machine)
        chain = ExplorerChain(explorer_machines, self.explorer_specs,
                              vicinity_samplers=samplers,
                              footprint_scale=plan.footprint_scale)
        analyst = AnalystPass(
            analyst_machine, hierarchy_config,
            processor_config=self.processor_config,
            prefetcher_factory=((lambda: StridePrefetcher(n_streams=8))
                                if self.prefetcher_enabled else None),
            mshr_window=self.mshr_window,
            seed=seed,
        )

        passes = [scout_machine] + explorer_machines + [analyst_machine]
        stage_times = [[] for _ in passes]
        regions = []
        key_counts = []
        engaged = []
        resolved_by_totals = np.zeros(len(self.explorer_specs), dtype=np.int64)
        warming_resolved_total = 0
        cold_total = 0
        key_collected_total = 0
        stops_true = 0
        stops_false = 0

        for spec in plan.regions():
            marks = [m.meter.ledger.total_seconds for m in passes]

            report = scout.run_region(spec)
            vicinity = ReuseHistogram()
            exploration = chain.run_region(spec, report, vicinity)
            key_distances = chain.key_reuse_distances(report, exploration)
            predictor = DirectedCapacityPredictor(key_distances, vicinity)
            regions.append(analyst.run_region(spec, predictor))

            for k, machine in enumerate(passes):
                stage_times[k].append(
                    machine.meter.ledger.total_seconds - marks[k])

            key_counts.append(report.n_key_lines)
            engaged.append(exploration.engaged)
            resolved_by_totals += np.asarray(exploration.resolved_by)
            warming_resolved_total += len(report.warming_resolved)
            cold_total += len(exploration.unresolved)
            key_collected_total += sum(
                1 for d in key_distances.values() if d >= 0)
            stops_true += exploration.true_stops
            stops_false += exploration.false_stops

        _, wall_seconds = pipeline_schedule(stage_times)

        merged = CostMeter(params=base_meter.params, scale=plan.scale,
                           ledger=TimeLedger())
        for machine in passes:
            merged.ledger.merge(machine.meter.ledger)

        vicinity_paper = sum(s.collected_paper_equivalent for s in samplers)
        vicinity_model = sum(s.collected_model for s in samplers)
        analyst_detailed = analyst_machine.meter.ledger.seconds_by_category.get(
            "detailed", 0.0)
        warming_seconds = (
            scout_machine.meter.ledger.total_seconds
            + sum(m.meter.ledger.total_seconds for m in explorer_machines))

        return StrategyResult(
            strategy=self.name,
            workload=workload.name,
            regions=regions,
            meter=merged,
            paper_equivalent_instructions=plan.paper_equivalent_instructions,
            wall_seconds=wall_seconds,
            extras={
                "collected_reuse_distances":
                    key_collected_total + vicinity_paper,
                "key_reuse_distances": key_collected_total,
                "vicinity_paper_equivalent": vicinity_paper,
                "vicinity_model_samples": vicinity_model,
                "key_lines_per_region": key_counts,
                "explorers_engaged": engaged,
                "mean_explorers_engaged": float(np.mean(engaged)),
                "resolved_by_explorer": resolved_by_totals.tolist(),
                "resolved_in_warming": warming_resolved_total,
                "cold_key_lines": cold_total,
                "watchpoint_true_stops": stops_true,
                "watchpoint_false_stops": stops_false,
                "stage_times": [sum(t) for t in stage_times],
                "warming_seconds": warming_seconds,
                "analyst_detailed_seconds": analyst_detailed,
                "warmup_vs_detailed":
                    (warming_seconds / analyst_detailed
                     if analyst_detailed else float("inf")),
            },
        )
