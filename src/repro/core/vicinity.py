"""Vicinity reuse-distance sampling.

Besides the key reuse distances themselves, DSW needs the *vicinity*
reuse-distance distribution — reuses in the neighbourhood of the key
reuses — to drive the StatStack conversion from reuse to stack distance
(Section 3.1.1).  Every engaged Explorer samples randomly selected memory
accesses inside its profiling window at a fixed rate (the paper default
is 1 per 100 k memory instructions; Figure 11 sweeps this density) and
records each sample's forward reuse distance with a short-lived
watchpoint.

Scaled-trace handling (DESIGN.md §6): the *collected* density is boosted
by ``density_boost`` so the estimator has enough samples on a short
trace; cost and reported sample counts are charged at the paper-
equivalent density over the explorer's paper-scale window.
"""

import numpy as np

from repro import kernels
from repro.statmodel.histogram import ReuseHistogram

#: Paper default: one vicinity sample per 100 k memory instructions.
DEFAULT_DENSITY = 1.0 / 100_000


class VicinitySampler:
    """Random forward-reuse sampling inside explorer windows."""

    def __init__(self, machine, density=DEFAULT_DENSITY, density_boost=1000.0,
                 rng=None, footprint_scale=1.0 / 64.0,
                 max_stops_per_watchpoint=64):
        self.machine = machine
        self.density = float(density)
        self.density_boost = float(density_boost)
        self.footprint_scale = float(footprint_scale)
        #: Dangling vicinity watchpoints (no reuse before the region) are
        #: abandoned after this many page stops, like RSW's.
        self.max_stops_per_watchpoint = int(max_stops_per_watchpoint)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: Model-scale samples collected (estimator size).
        self.collected_model = 0
        #: Paper-equivalent samples (what a paper-scale run would collect).
        self.collected_paper_equivalent = 0.0

    def sample_window(self, histogram, access_lo, access_hi, access_limit,
                      paper_window_instructions, model_window_instructions):
        """Sample the window ``[access_lo, access_hi)`` into ``histogram``.

        ``access_limit`` bounds the forward search (the region start: a
        watchpoint still pending there is a cold sample).  Returns the
        number of model-scale samples taken.
        """
        machine = self.machine
        trace = machine.trace
        n_accesses = access_hi - access_lo
        if n_accesses <= 0 or model_window_instructions <= 0:
            return 0

        expected = n_accesses * self.density * self.density_boost
        n_samples = int(self.rng.poisson(expected)) if expected > 0 else 0
        if n_samples == 0:
            return 0

        # Paper-equivalent accounting: the same density over the paper-
        # scale window, at the window's measured access rate.
        access_rate = n_accesses / model_window_instructions
        paper_samples = (paper_window_instructions * access_rate
                         * self.density)
        per_sample_weight = paper_samples / n_samples
        # Stop projection (DESIGN.md §6): a found reuse's page-stop count
        # is footprint-driven and scale-invariant; a dangling watchpoint
        # waits out the rest of the gap, whose paper equivalent is
        # `scale * footprint_scale` times the model count, bounded by the
        # abandonment threshold.
        scale = machine.meter.scale

        positions = np.sort(self.rng.integers(
            access_lo, access_hi, size=n_samples))
        # A watchpoint still dangling at the region boundary observed only
        # a right-censored wait: it is evidence of a *long* reuse only if
        # it watched for at least half the window; later samples are
        # dropped, or they would inflate the distribution's cold tail and
        # push borderline stack distances over the capacity threshold.
        censor_horizon = (access_lo + access_limit) // 2
        projected_stops = 0.0
        if kernels.get_backend() != "scalar":
            # One batched pass resolves every vicinity watchpoint's
            # reuse and stop count (identical values to the per-sample
            # binary searches); the cheap per-sample histogram
            # bookkeeping below stays sequential, preserving the
            # observation order bit-for-bit.
            reuses, stop_counts = machine.watchpoints.await_next_reuse_many(
                positions, access_limit)
            resolutions = zip(positions.tolist(), reuses.tolist(),
                              stop_counts.tolist())
        else:
            resolutions = (
                (pos, *machine.watchpoints.await_next_reuse(
                    int(trace.mem_line[pos]), pos, access_limit))
                for pos in positions.tolist())
        for pos, reuse_pos, stops in resolutions:
            if reuse_pos >= 0:
                histogram.add(reuse_pos - pos - 1)
                projected_stops += min(stops, self.max_stops_per_watchpoint)
            else:
                if pos <= censor_horizon:
                    histogram.add_cold()
                projected_stops += min(stops * scale * self.footprint_scale,
                                       self.max_stops_per_watchpoint)
        machine.meter.watchpoint_setups(paper_samples, scaled=False)
        machine.meter.watchpoint_stops(
            projected_stops * per_sample_weight, scaled=False)

        self.collected_model += n_samples
        self.collected_paper_equivalent += paper_samples
        return n_samples
