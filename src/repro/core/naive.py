"""Naive directed statistical warming — the ablation for Time Traveling.

Section 3.3 ("RSW versus DSW") argues that DSW *without* time traveling
is no faster than RSW: key-cacheline watchpoints must stay armed for the
entire warm-up interval (only the last reuse matters), so a single
profiling pass takes every page stop of every key line across the whole
gap — "the overhead for collecting them in a naive implementation is
high".  Time traveling exists precisely to avoid this.

This strategy implements that naive design: one process, watchpoints on
all key cachelines for the whole warm-up interval (plus the same
vicinity sampling), then the identical DSW classification.  Accuracy
therefore matches DeLorean; only the cost differs — which is the point
of the ablation benchmark.
"""

from repro.core.scout import ScoutPass
from repro.core.vicinity import DEFAULT_DENSITY, VicinitySampler
from repro.core.warming import DirectedCapacityPredictor
from repro.core.analyst import AnalystPass
from repro.sampling.base import StrategyBase
from repro.sampling.results import StrategyResult
from repro.statmodel.histogram import ReuseHistogram
from repro.vff.costmodel import CostMeter


class NaiveDirectedWarming(StrategyBase):
    """DSW with single-pass full-gap directed profiling (no TT)."""

    name = "NaiveDSW"

    def __init__(self, processor_config=None, vicinity_density=DEFAULT_DENSITY,
                 vicinity_boost=1000.0, mshr_window=24):
        super().__init__(processor_config)
        self.vicinity_density = float(vicinity_density)
        self.vicinity_boost = float(vicinity_boost)
        self.mshr_window = mshr_window

    def run(self, workload, plan, hierarchy_config, index=None, seed=0,
            context=None):
        context = self.context_for(workload, index=index, seed=seed,
                                   context=context)
        meter = CostMeter(scale=plan.scale)
        # Two logical phases of the same process: identify key lines
        # (requires a first pass to the region), then profile the entire
        # gap with all key-line watchpoints armed.
        scout_machine = context.machine(meter.fork())
        profile_machine = context.machine(meter.fork())
        analyst_machine = context.machine(meter.fork())
        scout = ScoutPass(scout_machine)
        rng = context.rng("naive-dsw")
        sampler = VicinitySampler(
            profile_machine, density=self.vicinity_density,
            density_boost=self.vicinity_boost, rng=rng,
            footprint_scale=plan.footprint_scale)
        analyst = AnalystPass(
            analyst_machine, hierarchy_config,
            processor_config=self.processor_config,
            mshr_window=self.mshr_window, seed=context.seed,
            context=context)

        regions = []
        total_stops = 0
        for spec in plan.regions():
            report = scout.run_region(spec)

            gap_lo = context.window(spec.warmup_start,
                                    spec.region_start).lo
            watched = sorted(report.key_first_access)
            profile = profile_machine.watchpoints.profile_window(
                watched, gap_lo, report.region_access_lo)
            # Watchpoints stay armed across the whole paper-scale gap:
            # charge the full window's stop traffic (footprint-projected,
            # like the Explorers' charges).
            paper_gap = spec.gap_instructions * meter.scale
            projection = (paper_gap / max(spec.gap_instructions, 1)
                          * plan.footprint_scale)
            profile_machine.meter.fast_forward(paper_gap, scaled=False)
            profile_machine.meter.watchpoint_setups(len(watched),
                                                    scaled=False)
            profile_machine.meter.watchpoint_stops(
                profile.total_stops * projection, scaled=False)
            total_stops += profile.total_stops

            vicinity = ReuseHistogram()
            sampler.sample_window(
                vicinity, gap_lo, report.region_access_lo,
                report.region_access_lo,
                paper_window_instructions=paper_gap,
                model_window_instructions=spec.gap_instructions)

            distances = {}
            for line, first in report.key_first_access.items():
                last = profile.last_access.get(line)
                if last is None:
                    last = report.warming_resolved.get(line)
                distances[line] = (first - last - 1) if last is not None else -1
            predictor = DirectedCapacityPredictor(distances, vicinity)
            regions.append(analyst.run_region(spec, predictor))

        merged = CostMeter(params=meter.params, scale=plan.scale)
        for machine in (scout_machine, profile_machine, analyst_machine):
            merged.ledger.merge(machine.meter.ledger)
        return StrategyResult(
            strategy=self.name,
            workload=workload.name,
            regions=regions,
            meter=merged,
            paper_equivalent_instructions=plan.paper_equivalent_instructions,
            extras={"watchpoint_stops_model": total_stops},
        )
