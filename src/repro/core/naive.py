"""Naive directed statistical warming — the ablation for Time Traveling.

Section 3.3 ("RSW versus DSW") argues that DSW *without* time traveling
is no faster than RSW: key-cacheline watchpoints must stay armed for the
entire warm-up interval (only the last reuse matters), so a single
profiling pass takes every page stop of every key line across the whole
gap — "the overhead for collecting them in a naive implementation is
high".  Time traveling exists precisely to avoid this.

This strategy implements that naive design: one process, watchpoints on
all key cachelines for the whole warm-up interval (plus the same
vicinity sampling), then the identical DSW classification.  Accuracy
therefore matches DeLorean; only the cost differs — which is the point
of the ablation benchmark.
"""

from repro.core.scout import ScoutPass
from repro.core.vicinity import DEFAULT_DENSITY, VicinitySampler
from repro.core.warming import DirectedCapacityPredictor
from repro.core.analyst import AnalystPass
from repro.sampling.base import StrategyBase
from repro.sampling.results import StrategyResult
from repro.statmodel.histogram import ReuseHistogram
from repro.vff.costmodel import CostMeter


class NaiveDirectedWarming(StrategyBase):
    """DSW with single-pass full-gap directed profiling (no TT)."""

    name = "NaiveDSW"

    def __init__(self, processor_config=None, vicinity_density=DEFAULT_DENSITY,
                 vicinity_boost=1000.0, mshr_window=24):
        super().__init__(processor_config)
        self.vicinity_density = float(vicinity_density)
        self.vicinity_boost = float(vicinity_boost)
        self.mshr_window = mshr_window

    def run(self, workload, plan, hierarchy_config, index=None, seed=0,
            context=None):
        context = self.context_for(workload, index=index, seed=seed,
                                   context=context)
        run = self.begin(context, plan, hierarchy_config)
        for spec in plan.regions():
            run.refine(spec)
        return run.result(plan)

    def begin(self, context, plan, hierarchy_config):
        """Start a refinable run (``refine`` per region, ``result`` at
        any watermark); :meth:`run` is the same steps back to back."""
        return NaiveDirectedWarmingRun(self, context, plan,
                                       hierarchy_config)


class NaiveDirectedWarmingRun:
    """Refinable NaiveDSW execution state.

    Three per-pass machines (scout, profile, analyst) and the single
    ``naive-dsw`` vicinity RNG are carried across :meth:`refine` calls;
    each call is exactly one iteration of the batch region loop, so the
    incremental path consumes the identical RNG draws and charges the
    identical per-pass ledgers as a from-scratch run on the same prefix.
    """

    def __init__(self, strategy, context, plan, hierarchy_config):
        self.strategy = strategy
        self.context = context
        self.footprint_scale = plan.footprint_scale
        self.meter = CostMeter(scale=plan.scale)
        # Two logical phases of the same process: identify key lines
        # (requires a first pass to the region), then profile the entire
        # gap with all key-line watchpoints armed.
        self.scout_machine = context.machine(self.meter.fork())
        self.profile_machine = context.machine(self.meter.fork())
        self.analyst_machine = context.machine(self.meter.fork())
        self.scout = ScoutPass(self.scout_machine)
        rng = context.rng("naive-dsw")
        self.sampler = VicinitySampler(
            self.profile_machine, density=strategy.vicinity_density,
            density_boost=strategy.vicinity_boost, rng=rng,
            footprint_scale=plan.footprint_scale)
        self.analyst = AnalystPass(
            self.analyst_machine, hierarchy_config,
            processor_config=strategy.processor_config,
            mshr_window=strategy.mshr_window, seed=context.seed,
            context=context)
        self.regions = []
        self.total_stops = 0

    def refine(self, spec):
        """Scout, profile and analyze one region."""
        context = self.context
        report = self.scout.run_region(spec)

        gap_lo = context.window(spec.warmup_start,
                                spec.region_start).lo
        watched = sorted(report.key_first_access)
        profile = self.profile_machine.watchpoints.profile_window(
            watched, gap_lo, report.region_access_lo)
        # Watchpoints stay armed across the whole paper-scale gap:
        # charge the full window's stop traffic (footprint-projected,
        # like the Explorers' charges).
        paper_gap = spec.gap_instructions * self.meter.scale
        projection = (paper_gap / max(spec.gap_instructions, 1)
                      * self.footprint_scale)
        self.profile_machine.meter.fast_forward(paper_gap, scaled=False)
        self.profile_machine.meter.watchpoint_setups(len(watched),
                                                     scaled=False)
        self.profile_machine.meter.watchpoint_stops(
            profile.total_stops * projection, scaled=False)
        self.total_stops += profile.total_stops

        vicinity = ReuseHistogram()
        self.sampler.sample_window(
            vicinity, gap_lo, report.region_access_lo,
            report.region_access_lo,
            paper_window_instructions=paper_gap,
            model_window_instructions=spec.gap_instructions)

        distances = {}
        for line, first in report.key_first_access.items():
            last = profile.last_access.get(line)
            if last is None:
                last = report.warming_resolved.get(line)
            distances[line] = (first - last - 1) if last is not None else -1
        predictor = DirectedCapacityPredictor(distances, vicinity)
        self.regions.append(self.analyst.run_region(spec, predictor))
        return self.regions[-1]

    def result(self, plan):
        """The :class:`StrategyResult` over the regions refined so far
        (per-pass ledgers merged into a fresh meter, scout first)."""
        merged = CostMeter(params=self.meter.params, scale=plan.scale)
        for machine in (self.scout_machine, self.profile_machine,
                        self.analyst_machine):
            merged.ledger.merge(machine.meter.ledger)
        return StrategyResult(
            strategy=self.strategy.name,
            workload=self.context.workload.name,
            regions=list(self.regions),
            meter=merged,
            paper_equivalent_instructions=plan.paper_equivalent_instructions,
            extras={"watchpoint_stops_model": self.total_stops},
        )
