"""The Analyst pass: detailed evaluation with DSW-predicted warming.

Per Figure 4 the Analyst does not fast-forward: it receives the
full-system state from Explorer-N at the start of the detailed-warming
window, performs the 30 k-instruction detailed warming (which builds the
lukewarm cache and warms pipeline/predictor state), then simulates the
detailed region cycle-accurately, consulting the Figure 3 classifier for
every memory request that escapes the lukewarm state (Section 3.2).
Because the Analyst's only work is warming + detailed simulation, extra
Analysts for design-space exploration are nearly free (Section 6.4.2).
"""

import numpy as np

from repro.sampling.base import StrategyBase
from repro.sampling.classify import WarmingClassifier
from repro.sampling.results import RegionResult
from repro.statmodel.assoc import StrideDetector


class AnalystPass(StrategyBase):
    """Detailed-region evaluation for one cache/processor configuration."""

    name = "analyst"

    def __init__(self, machine, hierarchy_config, processor_config=None,
                 prefetcher_factory=None, mshr_window=24, seed=0,
                 context=None):
        super().__init__(processor_config)
        self.machine = machine
        self.hierarchy_config = hierarchy_config
        self.prefetcher_factory = prefetcher_factory
        self.mshr_window = mshr_window
        self.seed = seed
        #: Shared :class:`~repro.core.context.ExecutionContext`; without
        #: one, windows are sliced off the machine's own trace.
        self.context = context

    def _window(self, instr_lo, instr_hi):
        if self.context is not None:
            return self.context.window(instr_lo, instr_hi)
        return self.machine.access_window(instr_lo, instr_hi)

    def run_region(self, spec, capacity_predictor):
        """Evaluate one region given the DSW capacity predictor."""
        machine = self.machine
        machine.switch_state()      # receive state from Explorer-N

        classifier = WarmingClassifier(
            self.hierarchy_config,
            capacity_predictor=capacity_predictor,
            stride_detector=StrideDetector(),
            mshrs=self.processor_config.mshrs_l1d,
            mshr_window=self.mshr_window,
            seed=self.seed,
            prefetcher=(self.prefetcher_factory()
                        if self.prefetcher_factory else None),
        )
        machine.meter.detailed(spec.paper_warming_instructions)
        l1_warming = self._window(spec.l1_warming_start, spec.region_start)
        warming = self._window(spec.warming_start, spec.region_start)
        classifier.warm_detailed(np.asarray(l1_warming.lines),
                                 np.asarray(warming.lines))

        machine.detailed(spec.region_start, spec.region_end)
        region = self._window(spec.region_start, spec.region_end)
        classified = classifier.classify_region(
            np.asarray(region.lines),
            np.asarray(region.pcs),
            region.rel_instr(),
        )
        machine.switch_state()

        timing = self.region_timing(self.context or machine, spec,
                                    classified)
        return RegionResult(
            index=spec.index,
            n_instructions=spec.region_end - spec.region_start,
            stats=classified.stats,
            timing=timing,
        )
