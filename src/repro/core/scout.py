"""The Scout pass: look into the future for the key cachelines.

The Scout fast-forwards (VFF) to each detailed region and switches to
functional simulation to record the *key cachelines* — all unique
cachelines referenced in the region (Section 3.2).  Because reaching the
region means passing through the 30 k-instruction detailed-warming
window, the Scout also observes, for free, the last warm-up access of any
key line that was touched inside that window; such lines need no Explorer
at all (this is why bwaves averages fewer than one engaged Explorer in
Figure 8 — nearly all of its key reuses sit within the warming window or
the lukewarm cache).
"""

from dataclasses import dataclass, field

import numpy as np

from repro import kernels


@dataclass
class ScoutReport:
    """Key-cacheline information for one detailed region."""

    region_index: int
    #: line -> access index of its *first* access inside the region.
    key_first_access: dict = field(default_factory=dict)
    #: line -> access index of its last warm-up access, for lines already
    #: resolved inside the detailed-warming window.
    warming_resolved: dict = field(default_factory=dict)
    #: Access-coordinate bounds of the region.
    region_access_lo: int = 0
    region_access_hi: int = 0

    @property
    def key_lines(self):
        return list(self.key_first_access)

    @property
    def n_key_lines(self):
        return len(self.key_first_access)

    @property
    def unresolved_after_warming(self):
        """Key lines whose last reuse precedes the warming window."""
        return [line for line in self.key_first_access
                if line not in self.warming_resolved]


class ScoutPass:
    """Runs ahead of the Explorers, one region at a time."""

    name = "scout"

    def __init__(self, machine):
        self.machine = machine

    def run_region(self, spec):
        """Produce the :class:`ScoutReport` for one region spec."""
        machine = self.machine
        # Near-native fast-forward across the gap...
        machine.fast_forward(spec.warmup_start, spec.warming_start)
        # ...then functional simulation through warming + region (cost
        # charged at the paper's 30 k + 10 k instructions; cheap even at
        # atomic speed).
        machine.meter.atomic(
            spec.paper_warming_instructions
            + (spec.region_end - spec.region_start), scaled=False)

        region = machine.access_window(spec.region_start, spec.region_end)
        unique_lines, first_idx = region.unique_lines()

        report = ScoutReport(
            region_index=spec.index,
            region_access_lo=region.lo,
            region_access_hi=region.hi,
        )
        warming = machine.access_window(spec.warming_start,
                                        spec.region_start)
        if kernels.get_backend() != "scalar" and unique_lines.size:
            # One batched window query resolves every key line's last
            # warming-window access (same values as the per-key binary
            # searches below).
            _, last_access = machine.index.lines.batch_counts_and_last(
                unique_lines, warming.lo, region.lo)
            for line, first, last in zip(unique_lines.tolist(),
                                         first_idx.tolist(),
                                         last_access.tolist()):
                report.key_first_access[line] = region.lo + first
                if last >= 0:
                    report.warming_resolved[line] = last
        else:
            for line, first in zip(unique_lines.tolist(),
                                   first_idx.tolist()):
                report.key_first_access[line] = region.lo + first
                last = machine.index.lines.last_in(line, warming.lo,
                                                   region.lo)
                if last >= 0:
                    report.warming_resolved[line] = last
        machine.sync()       # hand the key set to Explorer-1 over a pipe
        return report
