"""Thread-aware directed statistical warming (Section 4.3).

StatCache-MP (Berg, Zeffer & Hagersten, ISPASS 2006) shows how sparse
reuse information from one multi-threaded execution models cache sharing
under MSI coherence.  The paper sketches how this fits DSW: for a key
access by thread A whose previous access to the line was a *write by
thread B*,

* if A and B do **not** share the modeled cache, the line was
  invalidated in A's cache — a **coherence miss**, regardless of reuse
  distance;
* if they **do** share it, B's write warmed the shared cache for A —
  **constructive sharing**: a hit provided the (shared-stream) reuse
  distance is short enough, else an ordinary capacity miss.

:class:`ThreadAwareCapacityPredictor` layers these rules on top of the
single-threaded :class:`~repro.core.warming.DirectedCapacityPredictor`,
so it plugs into the same Figure 3 classifier.  (O/E-state refinements
are future work in the paper and here.)
"""

from dataclasses import dataclass, field

from repro.caches.stats import (
    HIT_WARMING,
    MISS_CAPACITY,
    MISS_COHERENCE,
    MISS_COLD,
)
from repro.core.warming import COLD_DISTANCE, DirectedCapacityPredictor

@dataclass(frozen=True)
class KeyAccessOrigin:
    """Provenance of a key line's previous access."""

    #: Backward reuse distance in (shared-stream) accesses; -1 = cold.
    distance: int
    #: Thread that performed the previous access (None if unknown/cold).
    writer_thread: int = None
    #: True if the previous access was a store.
    was_write: bool = False


@dataclass
class CacheTopology:
    """Which threads share the modeled cache.

    ``groups`` maps a thread id to a cache-domain id; threads in the
    same domain share the cache.  A single-domain topology models a
    shared LLC; one domain per thread models private caches.
    """

    groups: dict = field(default_factory=dict)

    def shared(self, thread_a, thread_b):
        if thread_a is None or thread_b is None:
            return False
        return (self.groups.get(thread_a, thread_a)
                == self.groups.get(thread_b, thread_b))


class ThreadAwareCapacityPredictor:
    """DSW capacity decision with MSI coherence rules (Section 4.3)."""

    def __init__(self, key_origins, vicinity_histogram, topology,
                 reader_thread):
        """``key_origins`` maps line -> :class:`KeyAccessOrigin`."""
        self.key_origins = dict(key_origins)
        self.topology = topology
        self.reader_thread = reader_thread
        distances = {line: origin.distance
                     for line, origin in self.key_origins.items()}
        self._base = DirectedCapacityPredictor(distances,
                                               vicinity_histogram)
        self.coherence_misses = 0
        self.constructive_hits = 0

    def __call__(self, pc, line, effective_llc_lines):
        origin = self.key_origins.get(int(line))
        if origin is None or origin.distance == COLD_DISTANCE:
            return MISS_COLD
        if origin.was_write and origin.writer_thread is not None and (
                origin.writer_thread != self.reader_thread):
            if not self.topology.shared(self.reader_thread,
                                        origin.writer_thread):
                # The remote write invalidated our copy.
                self.coherence_misses += 1
                return MISS_COHERENCE
            # Constructive sharing: the remote write warmed the shared
            # cache — an ordinary capacity check decides.
            outcome = self._base(pc, line, effective_llc_lines)
            if outcome == HIT_WARMING:
                self.constructive_hits += 1
            return outcome
        return self._base(pc, line, effective_llc_lines)

    def predicted_stack_distance(self, line):
        return self._base.predicted_stack_distance(line)
