"""Execution context: the uniform resource bundle every strategy runs on.

Historically each strategy took a loose ``(workload, index, store,
seed)`` tuple, reached into ``workload.trace`` for raw arrays, and
sliced them ad hoc.  That plumbing is what forced streamed traces to
behave like materialized ones.  :class:`ExecutionContext` owns the
execution-side resources of one run:

* the **workload** (whose trace may be a memory-mapped
  :class:`~repro.traceio.reader.TraceReader` view rather than RAM
  arrays);
* the **TraceIndex**, built lazily under the spill policy
  (``REPRO_INDEX_SPILL``): streamed traces get a chunked, store-spilled,
  memory-mapped index so queries never require the O(accesses) tables
  in RAM;
* the artifact **store** and the run **seed** (strategies derive their
  RNG streams through :meth:`rng`).

Strategies read trace data exclusively through :class:`AccessWindow`
slices (:meth:`ExecutionContext.window` and the region-shaped helpers),
so the only trace pages a run touches are the windows its sampling plan
— and its watchpoints — direct it to.  On a memory-mapped trace the
views stay zero-copy; on a materialized trace they are the same array
slices as before, bit for bit.
"""

import os
from dataclasses import dataclass

import numpy as np

from repro.util.rng import child_rng
from repro.vff.index import TraceIndex
from repro.vff.machine import VirtualMachine

#: ``REPRO_INDEX_SPILL`` values (default ``auto``): ``auto`` spills the
#: index for streaming workloads with an enabled store; ``always``
#: forces chunked/spilled construction for every workload; ``never``
#: restores the in-RAM argsort build unconditionally.
SPILL_MODES = ("auto", "always", "never")

_NEVER_VALUES = ("never", "off", "0", "false", "no")
_ALWAYS_VALUES = ("always", "on", "1", "true", "yes")


def index_spill_mode():
    """The spill policy the environment implies.

    Unknown values raise rather than silently meaning ``auto`` — the
    same contract as ``REPRO_KERNEL_BACKEND``, so a typo cannot mask a
    deliberate ``never``/``always``.
    """
    raw = os.environ.get("REPRO_INDEX_SPILL", "auto").strip().lower()
    if raw in _NEVER_VALUES:
        return "never"
    if raw in _ALWAYS_VALUES:
        return "always"
    if raw == "auto":
        return "auto"
    raise ValueError(
        f"REPRO_INDEX_SPILL must be one of {SPILL_MODES} (or an alias "
        f"like 'off'/'on'), got {raw!r}")


def wants_spill(workload, mode=None):
    """Whether the policy asks for a spilled index for this workload.

    The single place the dispatch rule lives — the suite runner and
    :class:`ExecutionContext` both consult it.
    """
    mode = mode if mode is not None else index_spill_mode()
    return (mode == "always"
            or (mode == "auto"
                and bool(getattr(workload, "streaming", False))))


@dataclass
class AccessWindow:
    """The memory accesses of one instruction window.

    Arrays are *views* over the trace (zero-copy on memory-mapped
    traces); coordinates come in both systems — ``instr_lo/instr_hi``
    (instructions) and ``lo/hi`` (access positions), matching
    ``trace.access_range``.
    """

    instr_lo: int
    instr_hi: int
    #: Access-coordinate bounds (``mem_*[lo:hi]`` is this window).
    lo: int
    hi: int
    lines: np.ndarray
    pcs: np.ndarray
    #: Absolute instruction index of each access.
    instr: np.ndarray

    @classmethod
    def from_trace(cls, trace, instr_lo, instr_hi):
        """The window of ``[instr_lo, instr_hi)`` over ``trace`` — the
        one construction path shared by :meth:`ExecutionContext.window`
        and :meth:`VirtualMachine.access_window`."""
        lo, hi = trace.access_range(instr_lo, instr_hi)
        return cls(instr_lo=instr_lo, instr_hi=instr_hi, lo=lo, hi=hi,
                   lines=trace.mem_line[lo:hi], pcs=trace.mem_pc[lo:hi],
                   instr=trace.mem_instr[lo:hi])

    @property
    def n_accesses(self):
        return self.hi - self.lo

    @property
    def n_instructions(self):
        return self.instr_hi - self.instr_lo

    def rel_instr(self, base=None):
        """Instruction offsets relative to ``base`` (window start)."""
        return self.instr - (self.instr_lo if base is None else base)

    def unique_lines(self):
        """Sorted unique lines and the window-relative first-occurrence
        index of each (``np.unique`` semantics)."""
        return np.unique(np.asarray(self.lines), return_index=True)


def trace_region_mispredicts(trace, spec):
    """Branch mispredictions inside a region's detailed window."""
    lo, hi = trace.branch_range(spec.region_start, spec.region_end)
    return int(np.asarray(trace.branch_mispred[lo:hi]).sum())


class ExecutionContext:
    """Owns trace-or-reader, index, store, and RNG seed for one run."""

    def __init__(self, workload, index=None, store=None, seed=0,
                 index_key=None, spill=None):
        self.workload = workload
        self.store = store
        self.seed = int(seed)
        self._index = index
        self._owns_index = index is None
        self._index_key = index_key
        self._spill = spill
        self._trace_fingerprint = None

    # -- resources ---------------------------------------------------------

    @property
    def name(self):
        return self.workload.name

    @property
    def trace(self):
        return self.workload.trace

    @property
    def streaming(self):
        """True when the workload serves its trace as memory maps."""
        return bool(getattr(self.workload, "streaming", False))

    @property
    def index(self):
        """The trace index, built lazily under the spill policy."""
        if self._index is None:
            self._index = self._build_index()
        return self._index

    def _build_index(self):
        store = self.store
        if not wants_spill(self.workload, self._spill):
            return TraceIndex(self.trace)
        if store is None or not getattr(store, "enabled", False):
            return TraceIndex.build_chunked(self.trace)
        return TraceIndex.build_spilled(self.trace, store,
                                        self._default_index_key())

    def _default_index_key(self):
        if self._index_key is not None:
            return self._index_key
        # A spilled index is a pure function of the trace content, so
        # address it by content fingerprint.  Imported workloads carry
        # theirs as an attribute; SyntheticStreamWorkload exposes it as
        # a property (from its manifest, no trace scan).  Note the
        # attribute doubles as key identity elsewhere (warm-up bundles):
        # workloads exposing it get content-addressed bundles, while
        # materialized synthetics — which must never trigger the O(n)
        # fingerprint scan below twice — stay name/seed-addressed, so
        # their fingerprint is cached on the context, never attached to
        # the workload object.
        fingerprint = getattr(self.workload, "trace_fingerprint", None)
        if fingerprint is None:
            if self._trace_fingerprint is None:
                from repro.traceio.container import trace_fingerprint

                self._trace_fingerprint = trace_fingerprint(self.trace)
            fingerprint = self._trace_fingerprint
        return {"artifact": "trace-index-spill",
                "trace_fingerprint": fingerprint}

    def machine(self, meter=None):
        """A :class:`VirtualMachine` over this context's trace + index."""
        return VirtualMachine(self.trace, meter=meter, index=self.index)

    def rng(self, label):
        """The deterministic RNG stream for one named consumer."""
        return child_rng(self.seed, label, self.workload.name)

    # -- windows -----------------------------------------------------------

    def window(self, instr_lo, instr_hi):
        """The :class:`AccessWindow` of ``[instr_lo, instr_hi)``."""
        return AccessWindow.from_trace(self.trace, instr_lo, instr_hi)

    def region_window(self, spec):
        """The detailed region's accesses."""
        return self.window(spec.region_start, spec.region_end)

    def warming_window(self, spec):
        """The (footprint-scaled) detailed-warming window."""
        return self.window(spec.warming_start, spec.region_start)

    def l1_warming_window(self, spec):
        """The full L1 detailed-warming window."""
        return self.window(spec.l1_warming_start, spec.region_start)

    def gap_window(self, spec):
        """The functional-warming gap (warm-up start to warming start)."""
        return self.window(spec.warmup_start, spec.warming_start)

    def region_mispredicts(self, spec):
        """Branch mispredictions inside the detailed region."""
        return trace_region_mispredicts(self.trace, spec)

    # -- lifecycle ---------------------------------------------------------

    def release(self):
        """Close context-owned resources (mapped index views, readers).

        An index that was handed in stays open — its owner decides.  The
        workload is always released (it reopens lazily on next use,
        exactly like :meth:`SuiteRunner.release`)."""
        if self._owns_index and self._index is not None:
            close = getattr(self._index, "close", None)
            if close is not None:
                close()
        # Drop the reference either way: a non-owned index stays open
        # (its owner holds it), but serving it past workload.release()
        # would pair it with a re-opened trace object.  Any index built
        # after this point is context-owned.
        self._index = None
        self._owns_index = True
        self.workload.release()
        # With no mapped views left on our side, drop the store's shared
        # reader lock so maintenance (``cache gc``) can proceed.
        release_locks = getattr(self.store, "release_locks", None)
        if release_locks is not None:
            release_locks()
