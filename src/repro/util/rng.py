"""Deterministic random-number streams.

Every stochastic component (trace generators, samplers, replacement
policies) takes an integer seed and derives independent child streams with
:func:`stream_seed`, so that any experiment is reproducible bit-for-bit
from a single top-level seed, and adding a consumer never perturbs the
streams of existing ones.
"""

import hashlib

import numpy as np


def stream_seed(seed, *labels):
    """Derive a child seed from ``seed`` and a tuple of string labels.

    The derivation hashes the labels, so streams are stable under code
    reorganization (unlike ``seed + k`` schemes).

    >>> stream_seed(42, "trace", "mcf") != stream_seed(42, "trace", "lbm")
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(seed)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest(), "little")


def child_rng(seed, *labels):
    """Return a ``numpy.random.Generator`` for the labelled child stream."""
    return np.random.default_rng(stream_seed(seed, *labels))
