"""Deterministic random-number streams.

Every stochastic component (trace generators, samplers, replacement
policies) takes an integer seed and derives independent child streams with
:func:`stream_seed`, so that any experiment is reproducible bit-for-bit
from a single top-level seed, and adding a consumer never perturbs the
streams of existing ones.
"""

import hashlib

import numpy as np


def stream_seed(seed, *labels):
    """Derive a child seed from ``seed`` and a tuple of string labels.

    The derivation hashes the labels, so streams are stable under code
    reorganization (unlike ``seed + k`` schemes).

    >>> stream_seed(42, "trace", "mcf") != stream_seed(42, "trace", "lbm")
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(seed)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest(), "little")


def child_rng(seed, *labels):
    """Return a ``numpy.random.Generator`` for the labelled child stream."""
    return np.random.default_rng(stream_seed(seed, *labels))


def clone_rng(rng):
    """An independent Generator frozen at ``rng``'s current position.

    Draws from the clone reproduce exactly what draws from ``rng`` would
    have produced, without advancing ``rng`` — including any buffered
    half-word the bit generator holds for 32-bit draws.  This is what
    lets chunked trace generation split one monolithic draw sequence
    into per-site streams that stay bit-identical at every chunk size.
    """
    bit_generator = type(rng.bit_generator)()
    bit_generator.state = rng.bit_generator.state
    return np.random.Generator(bit_generator)
