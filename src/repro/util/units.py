"""Size units and address-geometry constants.

The whole library standardizes on 64-byte cachelines and 4 KiB pages, the
configuration used throughout the paper (Table 1 and the page-protection
watchpoint mechanism of Section 2.3).
"""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Cacheline size in bytes (Table 1: 64 B lines at every level).
CACHELINE_BYTES = 64
#: log2(CACHELINE_BYTES); byte address >> CACHELINE_SHIFT == line address.
CACHELINE_SHIFT = 6

#: Page size used by the OS page-protection watchpoint mechanism.
PAGE_BYTES = 4096
#: log2(PAGE_BYTES); byte address >> PAGE_SHIFT == page number.
PAGE_SHIFT = 12

#: Cachelines per page: watchpoints on one line protect all 64 lines of
#: its page, which is the source of false-positive watchpoint stops.
LINES_PER_PAGE = PAGE_BYTES // CACHELINE_BYTES


def format_size(n_bytes):
    """Render a byte count as a human-readable string (e.g. ``8 MiB``).

    >>> format_size(8 * MIB)
    '8 MiB'
    >>> format_size(1536)
    '1.5 KiB'
    """
    if n_bytes % GIB == 0:
        return f"{n_bytes // GIB} GiB"
    if n_bytes % MIB == 0:
        return f"{n_bytes // MIB} MiB"
    if n_bytes % KIB == 0:
        return f"{n_bytes // KIB} KiB"
    if n_bytes >= GIB:
        return f"{n_bytes / GIB:.1f} GiB"
    if n_bytes >= MIB:
        return f"{n_bytes / MIB:.1f} MiB"
    if n_bytes >= KIB:
        return f"{n_bytes / KIB:.1f} KiB"
    return f"{n_bytes} B"
