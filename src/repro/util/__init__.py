"""Shared utilities: deterministic RNG streams, units, address helpers."""

from repro.util.rng import child_rng, stream_seed
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    CACHELINE_BYTES,
    CACHELINE_SHIFT,
    PAGE_BYTES,
    PAGE_SHIFT,
    LINES_PER_PAGE,
    format_size,
)

__all__ = [
    "child_rng",
    "stream_seed",
    "KIB",
    "MIB",
    "GIB",
    "CACHELINE_BYTES",
    "CACHELINE_SHIFT",
    "PAGE_BYTES",
    "PAGE_SHIFT",
    "LINES_PER_PAGE",
    "format_size",
]
