"""``python -m repro telemetry`` — render run reports from event logs."""

import argparse
import json
import os
import sys

from repro.telemetry import core, report as report_mod


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro telemetry",
        description="Aggregate and render telemetry run reports "
                    "(REPRO_TELEMETRY=counters|trace writes per-process "
                    "event logs under REPRO_TELEMETRY_DIR).")
    parser.add_argument("action", choices=("report", "summary", "ls"),
                        help="report: full per-run profile; "
                             "summary: one-line digest; "
                             "ls: list run directories")
    parser.add_argument("--dir", default=None,
                        help="telemetry sink root (overrides "
                             "REPRO_TELEMETRY_DIR)")
    parser.add_argument("--run", default=None,
                        help="specific run directory "
                             "(default: most recent under the sink root)")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--json", action="store_true",
                       help="machine-readable report")
    group.add_argument("--csv", action="store_true",
                       help="counters/timers as CSV rows")
    group.add_argument("--html", action="store_true",
                       help="static HTML page")
    parser.add_argument("--out", default=None,
                        help="write the rendered report to this file")
    return parser


def resolve_run(args):
    if args.run:
        if not os.path.isdir(args.run):
            raise FileNotFoundError(f"no such run directory: {args.run}")
        return args.run
    root = args.dir or core.default_sink_dir()
    return report_mod.latest_run(root)


def telemetry_main(argv):
    args = build_parser().parse_args(argv)
    root = args.dir or core.default_sink_dir()
    if args.action == "ls":
        runs = report_mod.list_runs(root)
        for run in runs:
            print(run)
        if not runs:
            print(f"no telemetry runs under {root}", file=sys.stderr)
        return 0
    try:
        run_dir = resolve_run(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    run = report_mod.RunReport.from_dir(run_dir)
    if args.action == "summary":
        print(run.summary())
        return 0
    if args.json:
        text = run.to_json()
    elif args.csv:
        text = run.to_csv()
    elif args.html:
        text = run.render_html()
    else:
        text = run.render_text()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"written to {args.out}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def build_matrix_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro matrix",
        description="Run or inspect the resilient SMARTS/CoolSim/DeLorean "
                    "matrix.  'report' renders the MatrixReport persisted "
                    "into the latest telemetry run by a previous "
                    "run_matrix (requires REPRO_TELEMETRY!=off during "
                    "that run); 'run' executes a matrix now and reports "
                    "it directly.")
    parser.add_argument("action", choices=("report", "run"),
                        help="report: last persisted MatrixReport; "
                             "run: execute a matrix and report it")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable MatrixReport")
    parser.add_argument("--dir", default=None,
                        help="telemetry sink root (report; overrides "
                             "REPRO_TELEMETRY_DIR)")
    parser.add_argument("--run-dir", default=None,
                        help="specific telemetry run directory (report)")
    parser.add_argument("--all", action="store_true",
                        help="report every dispatch in the run, not just "
                             "the last")
    parser.add_argument("--quick", action="store_true",
                        help="run: six-benchmark sweep instead of all 24")
    parser.add_argument("--benchmarks", default=None,
                        help="run: comma-separated benchmark subset")
    parser.add_argument("--workers", type=int, default=2,
                        help="run: pool size (default 2)")
    parser.add_argument("--seed", type=int, default=None,
                        help="run: top-level seed (default 1)")
    parser.add_argument("--instructions", type=int, default=None,
                        help="run: trace length per benchmark "
                             "(default 6M)")
    return parser


def _render_matrix(payload, as_json, faults_fired=None):
    from repro.reliability.report import MatrixReport

    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(MatrixReport.from_dict(payload)
              .summary(faults_fired=faults_fired))


def _run_fault_total(run_dir):
    """Total injected-fault firings recorded in one telemetry run."""
    try:
        run = report_mod.RunReport.from_dir(run_dir, write_merged=False)
    except OSError:
        return None
    return sum(run.fault_totals().values()) or None


def matrix_main(argv):
    args = build_matrix_parser().parse_args(argv)
    if args.action == "report":
        try:
            if args.run_dir:
                run_dir = args.run_dir
            else:
                root = args.dir or core.default_sink_dir()
                run_dir = report_mod.latest_run(root)
        except FileNotFoundError as exc:
            print(f"error: {exc} (matrix reports are persisted only when "
                  "REPRO_TELEMETRY is enabled during run_matrix)",
                  file=sys.stderr)
            return 1
        payloads = report_mod._read_jsonl(
            os.path.join(run_dir, report_mod.MATRIX_NAME))
        if not payloads:
            print(f"error: no matrix reports in {run_dir} (was "
                  "run_matrix executed with telemetry enabled?)",
                  file=sys.stderr)
            return 1
        faults = _run_fault_total(run_dir)
        for payload in (payloads if args.all else payloads[-1:]):
            _render_matrix(payload, args.json, faults_fired=faults)
        return 0

    # action == "run"
    from repro.experiments import ExperimentConfig, SuiteRunner

    names = None
    if args.benchmarks:
        names = tuple(name.strip() for name in args.benchmarks.split(","))
    elif args.quick:
        names = ("perlbench", "bwaves", "mcf", "povray", "GemsFDTD", "lbm")
    overrides = {"names": names}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.instructions:
        overrides["n_instructions"] = args.instructions
    runner = SuiteRunner(ExperimentConfig(**overrides))
    runner.run_matrix(max_workers=args.workers)
    report = runner.last_matrix_report
    if report is None:
        print("error: matrix produced no report", file=sys.stderr)
        return 1
    if args.json:
        print(report.to_json())
    else:
        from repro import telemetry
        session = telemetry.session()
        faults = None
        if session is not None:
            faults = sum(value for name, value
                         in session.counters.items()
                         if name.startswith("fault.")) or None
        print(report.summary(faults_fired=faults))
    return 0
