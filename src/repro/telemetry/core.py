"""Telemetry session: counters, timers, spans, and a JSONL event sink.

One :class:`TelemetrySession` per process.  The module-level facade in
:mod:`repro.telemetry` holds the active session (or ``None`` when
telemetry is off) so every instrumentation site costs a single
attribute load + ``is None`` test on the disabled path.

Modes (``REPRO_TELEMETRY``):

``off``
    No session.  Instrumented code paths take the early-out branch.
``counters``
    In-memory counters and aggregated timers only.  If a sink
    directory is configured, a single ``snapshot`` record is written
    per process at flush/exit — nothing is written per event, so the
    hot path stays allocation-free.
``trace``
    Everything ``counters`` does, plus a ``span`` record per
    non-hot-path span and ``point`` records for discrete events,
    streamed to a per-PID JSONL file.

Process model: the first session with a sink directory creates a run
directory ``run-<stamp>-p<pid>`` and exports it as
``REPRO_TELEMETRY_RUN`` so pool workers — whether forked or spawned —
append their own ``events-<pid>.jsonl`` to the *same* run.  Files are
opened unbuffered in append mode, so a line is durable as soon as it
is written and a forked child never replays the parent's buffer.
:func:`os.register_at_fork` rebuilds the child's session so it gets
its own file and zeroed counters.
"""

import atexit
import json
import os
import threading
import time

MODES = ("off", "counters", "trace")

_ALIASES = {
    "": "off", "0": "off", "off": "off", "false": "off", "no": "off",
    "none": "off",
    "1": "counters", "on": "counters", "true": "counters",
    "counters": "counters", "count": "counters",
    "trace": "trace", "full": "trace",
}

ENV_MODE = "REPRO_TELEMETRY"
ENV_DIR = "REPRO_TELEMETRY_DIR"
ENV_RUN = "REPRO_TELEMETRY_RUN"


def mode_from_env(environ=None):
    """Resolve ``REPRO_TELEMETRY`` to one of :data:`MODES`."""
    environ = os.environ if environ is None else environ
    raw = environ.get(ENV_MODE, "off").strip().lower()
    try:
        return _ALIASES[raw]
    except KeyError:
        raise ValueError(
            f"{ENV_MODE}={raw!r}: expected one of {'|'.join(MODES)}")


def default_sink_dir(environ=None):
    """Sink root: ``REPRO_TELEMETRY_DIR`` or ``<user cache>/telemetry``.

    Mirrors the store's root resolution without importing it (the
    store itself is instrumented, so telemetry must not import store).
    """
    environ = os.environ if environ is None else environ
    explicit = environ.get(ENV_DIR)
    if explicit:
        return explicit
    base = environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "telemetry")


def read_rss():
    """Current and peak resident set in KiB from ``/proc/self/status``.

    Returns ``(rss_kb, hwm_kb)``; ``(None, None)`` where /proc is
    unavailable (non-Linux).
    """
    try:
        with open("/proc/self/status", "rb") as handle:
            text = handle.read().decode("ascii", "replace")
    except OSError:
        return None, None
    rss = hwm = None
    for line in text.splitlines():
        if line.startswith("VmRSS:"):
            rss = int(line.split()[1])
        elif line.startswith("VmHWM:"):
            hwm = int(line.split()[1])
    return rss, hwm


def _active_backend():
    """The resolved kernel backend for snapshot records.

    Uses the registry (not the raw environment variable) so a
    ``native`` selection that fell back to ``vector`` is reported as
    what actually ran.  Imported lazily to keep this module free of
    package dependencies at import time.
    """
    try:
        from repro import kernels
        return kernels.get_backend()
    except Exception:
        return os.environ.get("REPRO_KERNEL_BACKEND", "vector")


class TelemetrySession:
    """Per-process metric registry plus optional JSONL sink."""

    def __init__(self, mode, sink_dir=None, environ=None):
        if mode not in MODES or mode == "off":
            raise ValueError(f"bad session mode: {mode!r}")
        environ = os.environ if environ is None else environ
        self.mode = mode
        self.trace = mode == "trace"
        self.pid = os.getpid()
        self.started_unix = time.time()
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self.counters = {}
        self.timers = {}  # name -> [calls, wall_s, cpu_s]
        self.run_dir = None
        self.owns_run = False
        self._file = None
        if sink_dir is not None:
            inherited = environ.get(ENV_RUN)
            if inherited and os.path.isdir(inherited):
                self.run_dir = inherited
            else:
                stamp = time.strftime("%Y%m%d-%H%M%S",
                                      time.gmtime(self.started_unix))
                run = os.path.join(sink_dir, f"run-{stamp}-p{self.pid}")
                os.makedirs(run, exist_ok=True)
                self.run_dir = run
                self.owns_run = True
                environ[ENV_RUN] = run

    # -- counters / timers -------------------------------------------------

    def count(self, name, n=1):
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def add_time(self, name, wall, cpu=0.0, n=1):
        with self._lock:
            cell = self.timers.get(name)
            if cell is None:
                self.timers[name] = [n, wall, cpu]
            else:
                cell[0] += n
                cell[1] += wall
                cell[2] += cpu

    # -- spans -------------------------------------------------------------

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def begin(self, name):
        stack = self._stack()
        path = stack[-1][1] + "/" + name if stack else name
        handle = (name, path, time.perf_counter(), time.process_time())
        stack.append(handle)
        return handle

    def end(self, handle, fields=None, emit=True, rss=False):
        name, path, t_wall, t_cpu = handle
        wall = time.perf_counter() - t_wall
        cpu = time.process_time() - t_cpu
        stack = self._stack()
        if stack and stack[-1] is handle:
            stack.pop()
        elif handle in stack:  # unwound through an exception
            del stack[stack.index(handle):]
        self.add_time(name, wall, cpu)
        if emit and self.trace and self._file_ready():
            record = {
                "ev": "span", "name": name, "path": path,
                "ts": time.time(), "pid": self.pid,
                "wall_s": round(wall, 6), "cpu_s": round(cpu, 6),
            }
            if rss:
                rss_kb, hwm_kb = read_rss()
                if rss_kb is not None:
                    record["rss_kb"] = rss_kb
                    record["hwm_kb"] = hwm_kb
            if fields:
                record["fields"] = fields
            self._emit(record)
        return wall

    def event(self, name, fields=None):
        """A discrete trace-mode point event (no-op in counters mode)."""
        if not (self.trace and self._file_ready()):
            return
        record = {"ev": "point", "name": name,
                  "ts": time.time(), "pid": self.pid}
        if fields:
            record["fields"] = fields
        self._emit(record)

    # -- sink --------------------------------------------------------------

    def _file_ready(self):
        if self.run_dir is None:
            return False
        if self._file is None:
            path = os.path.join(self.run_dir, f"events-{self.pid}.jsonl")
            # Unbuffered append: every line is one atomic-enough write,
            # durable even if this worker is later SIGKILLed, and a
            # forked child inherits no pending buffer.
            self._file = open(path, "ab", buffering=0)
        return True

    def _emit(self, record):
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True).encode("utf-8") + b"\n"
        with self._lock:
            self._file.write(line)

    def snapshot(self):
        """Point-in-time aggregate of this process's metrics."""
        rss_kb, hwm_kb = read_rss()
        with self._lock:
            counters = dict(self.counters)
            timers = {
                name: {"calls": cell[0],
                       "wall_s": round(cell[1], 6),
                       "cpu_s": round(cell[2], 6)}
                for name, cell in self.timers.items()
            }
        record = {
            "ev": "snapshot", "ts": time.time(), "pid": self.pid,
            "mode": self.mode,
            "started_unix": self.started_unix,
            "elapsed_s": round(time.perf_counter() - self._t0, 6),
            "counters": counters, "timers": timers,
            "backend": _active_backend(),
        }
        if rss_kb is not None:
            record["rss_kb"] = rss_kb
            record["hwm_kb"] = hwm_kb
        return record

    def flush(self):
        """Write a snapshot record (merge readers keep the last one)."""
        if self._file_ready():
            self._emit(self.snapshot())

    def close(self, environ=None):
        environ = os.environ if environ is None else environ
        try:
            self.flush()
        except (OSError, ValueError):
            pass
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self.owns_run and environ.get(ENV_RUN) == self.run_dir:
            del environ[ENV_RUN]
        self.owns_run = False
