"""Repro telemetry: near-zero-overhead counters, timers, and spans.

Facade over :mod:`repro.telemetry.core`.  Instrumented modules do::

    from repro import telemetry

    telemetry.counter("store.hit")

    with telemetry.span("phase.index", rss=True, benchmark=name):
        ...

    s = telemetry.session()          # hot paths: hoist the None check
    t0 = time.perf_counter() if s is not None else 0.0
    result = kernel(...)
    if s is not None:
        s.add_time("kernel.bulk_warm", time.perf_counter() - t0)

The session is built lazily from ``REPRO_TELEMETRY`` on first use;
``off`` (the default) resolves to ``None`` and every facade call
reduces to one global load + ``is None`` branch.  This module imports
only the standard library so any subsystem (store, kernels, pool
workers, fault plans) can import it without cycles.

See :mod:`repro.telemetry.core` for modes and the on-disk layout, and
:mod:`repro.telemetry.report` for aggregation.
"""

import atexit
import contextlib
import os

from repro.telemetry.core import (  # noqa: F401  (re-exported)
    ENV_DIR,
    ENV_MODE,
    ENV_RUN,
    MODES,
    TelemetrySession,
    default_sink_dir,
    mode_from_env,
    read_rss,
)

_UNSET = object()
_session = _UNSET


def _build_from_env():
    env_mode = mode_from_env()
    if env_mode == "off":
        return None
    # counters mode only opens a sink when a run is already in flight
    # or a directory was explicitly configured; trace mode always
    # needs somewhere to stream events.
    if (env_mode == "trace" or os.environ.get(ENV_RUN)
            or os.environ.get(ENV_DIR)):
        sink = default_sink_dir()
    else:
        sink = None
    return TelemetrySession(env_mode, sink_dir=sink)


def session():
    """The active :class:`TelemetrySession`, or ``None`` when off."""
    global _session
    if _session is _UNSET:
        _session = _build_from_env()
    return _session


def enabled():
    return session() is not None


def mode():
    s = session()
    return "off" if s is None else s.mode


def run_dir():
    s = session()
    return None if s is None else s.run_dir


def counter(name, n=1):
    s = session()
    if s is not None:
        s.count(name, n)


def add_time(name, wall, cpu=0.0, n=1):
    s = session()
    if s is not None:
        s.add_time(name, wall, cpu, n)


def event(name, **fields):
    s = session()
    if s is not None:
        s.event(name, fields or None)


@contextlib.contextmanager
def span(name, rss=False, emit=True, **fields):
    """Time a phase; in trace mode also emit a span record.

    ``rss=True`` samples ``/proc/self/status`` at span end (use on
    phase-level spans only).  ``emit=False`` aggregates into timers
    without writing a trace record (for mid-frequency paths).
    """
    s = session()
    if s is None:
        yield None
        return
    handle = s.begin(name)
    try:
        yield s
    finally:
        s.end(handle, fields or None, emit, rss)


def flush():
    """Write this process's snapshot record to its event file."""
    s = session()
    if s is not None:
        s.flush()


def configure(mode=None, directory=None):
    """(Re)build the session explicitly — for tests and CLIs.

    ``mode=None`` re-reads the environment.  Returns the new session
    (or ``None``).  Closes (and snapshot-flushes) any prior session.
    """
    global _session
    if _session not in (None, _UNSET):
        _session.close()
    if mode is None:
        _session = _UNSET
        return session()
    if mode not in MODES:
        raise ValueError(f"mode must be one of {'|'.join(MODES)}: {mode!r}")
    if mode == "off":
        _session = None
        return None
    if directory is None and mode == "trace":
        directory = default_sink_dir()
    _session = TelemetrySession(mode, sink_dir=directory)
    return _session


def shutdown():
    """Close the active session and return to lazy env resolution."""
    global _session
    if _session not in (None, _UNSET):
        _session.close()
    _session = _UNSET


def _atexit_flush():
    global _session
    if _session not in (None, _UNSET):
        _session.close()
        _session = None


atexit.register(_atexit_flush)


def _after_fork():
    # A forked pool worker must not share the parent's counters or its
    # event-file handle: rebuild from env (ENV_RUN keeps it in the
    # same run directory).  The parent's file object is dropped
    # without close() — it is unbuffered, so nothing is replayed.
    global _session
    if _session not in (None, _UNSET):
        _session._file = None
        _session = _UNSET


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_after_fork)
