"""Run-report aggregation over a telemetry run directory.

A run directory (``run-<stamp>-p<pid>`` under the sink root) holds one
``events-<pid>.jsonl`` per participating process.  Each file carries
zero or more ``span``/``point`` records (trace mode) and one or more
``snapshot`` records; counters and timers are monotonic within a
process, so the *last* snapshot per PID is that process's total.

:class:`RunReport` merges the per-PID files into one picture: summed
counters/timers across processes, the event stream ordered by wall
clock (optionally persisted as ``merged.jsonl``), per-process peak
RSS, and any ``matrix-reports.jsonl`` the pool dispatcher left
behind.  Renderers cover text, JSON, CSV, and a static standalone
HTML page built on the shared :mod:`repro.reporting.html`
primitives.  :meth:`RunReport.gate_metrics` derives the behavioral
regression surface (bailout rate, store hit rates, pool retries,
fault firings) that ``benchmarks/bench.py`` gates alongside wall/RSS.
"""

import io
import json
import os

MERGED_NAME = "merged.jsonl"
MATRIX_NAME = "matrix-reports.jsonl"


def list_runs(directory):
    """Run dirs under ``directory``, oldest first."""
    try:
        names = sorted(
            name for name in os.listdir(directory)
            if name.startswith("run-")
            and os.path.isdir(os.path.join(directory, name)))
    except OSError:
        return []
    return [os.path.join(directory, name) for name in names]


def latest_run(directory):
    runs = list_runs(directory)
    if not runs:
        raise FileNotFoundError(f"no telemetry runs under {directory}")
    return max(runs, key=os.path.getmtime)


def _read_jsonl(path):
    records = []
    try:
        with open(path, "rb") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue  # torn tail line from a killed worker
    except OSError:
        pass
    return records


class RunReport:
    """Merged view over one telemetry run directory."""

    def __init__(self, run_dir, processes, events):
        self.run_dir = run_dir
        #: pid -> final snapshot record (may be empty in trace-only runs)
        self.processes = processes
        #: span/point records across all processes, ordered by ts
        self.events = events
        self.counters = {}
        self.timers = {}
        for snap in processes.values():
            for name, value in snap.get("counters", {}).items():
                self.counters[name] = self.counters.get(name, 0) + value
            for name, cell in snap.get("timers", {}).items():
                agg = self.timers.setdefault(
                    name, {"calls": 0, "wall_s": 0.0, "cpu_s": 0.0})
                agg["calls"] += cell.get("calls", 0)
                agg["wall_s"] += cell.get("wall_s", 0.0)
                agg["cpu_s"] += cell.get("cpu_s", 0.0)

    @classmethod
    def from_dir(cls, run_dir, write_merged=True):
        processes = {}
        events = []
        for name in sorted(os.listdir(run_dir)):
            if not (name.startswith("events-") and name.endswith(".jsonl")):
                continue
            for record in _read_jsonl(os.path.join(run_dir, name)):
                kind = record.get("ev")
                if kind == "snapshot":
                    # last snapshot per pid wins (totals are monotonic)
                    processes[record.get("pid", name)] = record
                elif kind in ("span", "point"):
                    events.append(record)
        events.sort(key=lambda r: r.get("ts", 0.0))
        report = cls(run_dir, processes, events)
        if write_merged:
            report.write_merged()
        return report

    def write_merged(self):
        """Persist the cross-process event log as ``merged.jsonl``."""
        path = os.path.join(self.run_dir, MERGED_NAME)
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.events:
                handle.write(json.dumps(record, separators=(",", ":"),
                                        sort_keys=True) + "\n")
            for pid in sorted(self.processes):
                handle.write(json.dumps(self.processes[pid],
                                        separators=(",", ":"),
                                        sort_keys=True) + "\n")
        return path

    # -- derived views -----------------------------------------------------

    def counter(self, name, default=0):
        return self.counters.get(name, default)

    def counters_with_prefix(self, prefix):
        return {name: value for name, value in sorted(self.counters.items())
                if name.startswith(prefix)}

    def timers_with_prefix(self, prefix):
        return {name: dict(cell) for name, cell in sorted(self.timers.items())
                if name.startswith(prefix)}

    def phases(self):
        return self.timers_with_prefix("phase.")

    def kernels(self):
        return self.timers_with_prefix("kernel.")

    def store_totals(self):
        hits = self.counter("store.hit")
        misses = self.counter("store.miss")
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "memory_hits": self.counter("store.hit.memory"),
            "hit_rate": (hits / lookups) if lookups else None,
            "saves": self.counter("store.save"),
            "dropped_saves": self.counter("store.dropped_save"),
            "quarantined": self.counter("store.quarantine"),
            "degraded_roots": self.counter("store.degraded_root"),
            "by_kind": {
                "hit": self.counters_with_prefix("store.hit."),
                "miss": self.counters_with_prefix("store.miss."),
            },
        }

    def pool_totals(self):
        return self.counters_with_prefix("pool.")

    def fault_totals(self):
        return self.counters_with_prefix("fault.")

    def bailout_rate(self):
        calls = self.counter("kernel.bulk_warm.calls")
        bailouts = self.counter("kernel.bulk_warm.bailout")
        return (bailouts / calls) if calls else None

    def gate_metrics(self):
        """The flat behavioral gate surface derived from this run.

        ``benchmarks/bench.py`` records these as the ``behavior``
        pseudo-suite and checks them against the committed baseline:
        kernel bailout rate, store hit rate (overall and per label),
        pool retry/requeue and failure counts, fault firings.  The
        counts are deterministic for a fixed workload, so they catch
        behavioral drift — a change that silently doubles scalar
        bailouts or halves warm-start hits — even when wall time and
        RSS stay flat.
        """
        if not self.counters:
            return {}
        metrics = {}
        bail = self.bailout_rate()
        if bail is not None:
            metrics["kernel.bulk_warm.bailout_rate"] = round(bail, 4)
        totals = self.store_totals()
        if totals["hit_rate"] is not None:
            metrics["store.hit_rate"] = round(totals["hit_rate"], 4)
        labels = set()
        for kind in ("hit", "miss"):
            for name in totals["by_kind"][kind]:
                label = name.split(".", 2)[2]
                if label != "memory":        # tier marker, not a label
                    labels.add(label)
        for label in sorted(labels):
            hits = self.counter(f"store.hit.{label}")
            misses = self.counter(f"store.miss.{label}")
            if hits + misses:
                metrics[f"store.hit_rate.{label}"] = \
                    round(hits / (hits + misses), 4)
        metrics["pool.task.resubmitted"] = \
            self.counter("pool.task.resubmitted")
        metrics["pool.task.failures"] = sum(
            self.counter(f"pool.task.{kind}")
            for kind in ("crash", "timeout", "error", "aborted"))
        metrics["fault.fired"] = sum(self.fault_totals().values())
        return metrics

    def wall_seconds(self):
        if not self.processes:
            return None
        return max(snap.get("elapsed_s", 0.0)
                   for snap in self.processes.values())

    def rss_by_process(self):
        return {
            str(pid): {"hwm_kb": snap.get("hwm_kb"),
                       "rss_kb": snap.get("rss_kb")}
            for pid, snap in sorted(self.processes.items())
        }

    def matrix_reports(self):
        """MatrixReport dicts persisted by the pool dispatcher."""
        return _read_jsonl(os.path.join(self.run_dir, MATRIX_NAME))

    # -- renderers ---------------------------------------------------------

    def as_dict(self):
        return {
            "run_dir": self.run_dir,
            "mode": next((snap.get("mode")
                          for snap in self.processes.values()), None),
            "processes": len(self.processes),
            "events": len(self.events),
            "wall_seconds": self.wall_seconds(),
            "counters": dict(sorted(self.counters.items())),
            "timers": {name: dict(cell)
                       for name, cell in sorted(self.timers.items())},
            "store": self.store_totals(),
            "pool": self.pool_totals(),
            "faults": self.fault_totals(),
            "bulk_warm_bailout_rate": self.bailout_rate(),
            "rss": self.rss_by_process(),
            "matrix_reports": len(self.matrix_reports()),
        }

    def to_json(self, indent=2):
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_csv(self):
        out = io.StringIO()
        out.write("record,name,calls,wall_s,cpu_s,value\n")
        for name, value in sorted(self.counters.items()):
            out.write(f"counter,{name},,,,{value}\n")
        for name, cell in sorted(self.timers.items()):
            out.write(f"timer,{name},{cell['calls']},"
                      f"{cell['wall_s']:.6f},{cell['cpu_s']:.6f},\n")
        return out.getvalue()

    def summary(self):
        store = self.store_totals()
        wall = self.wall_seconds()
        rate = store["hit_rate"]
        bail = self.bailout_rate()
        parts = [
            f"{len(self.processes)} process(es)",
            f"{len(self.events)} event(s)",
            f"wall {wall:.2f}s" if wall is not None else "wall n/a",
            (f"store {store['hits']}/{store['hits'] + store['misses']} hits"
             + (f" ({rate:.0%})" if rate is not None else "")),
        ]
        if bail is not None:
            parts.append(f"bailout {bail:.0%}")
        fired = sum(self.fault_totals().values())
        if fired:
            parts.append(f"{fired} fault(s) fired")
        return f"telemetry run {os.path.basename(self.run_dir)}: " + \
            ", ".join(parts)

    def render_text(self):
        lines = [self.summary(), ""]

        def table(title, rows):
            if not rows:
                return
            lines.append(title)
            lines.extend(rows)
            lines.append("")

        phases = self.phases()
        table("phases (wall / cpu / calls):", [
            f"  {name:<34s} {cell['wall_s']:>9.3f}s {cell['cpu_s']:>9.3f}s "
            f"{cell['calls']:>7d}"
            for name, cell in phases.items()])
        kernels = self.kernels()
        table("kernels (wall / calls):", [
            f"  {name:<34s} {cell['wall_s']:>9.3f}s {cell['calls']:>9d}"
            for name, cell in kernels.items()])
        store = self.store_totals()
        rate = store["hit_rate"]
        table("store:", [
            f"  hits {store['hits']} (memory {store['memory_hits']}), "
            f"misses {store['misses']}"
            + (f", hit rate {rate:.1%}" if rate is not None else ""),
            f"  saves {store['saves']}, dropped {store['dropped_saves']}, "
            f"quarantined {store['quarantined']}, "
            f"degraded roots {store['degraded_roots']}",
        ])
        pool = self.pool_totals()
        table("pool:", [f"  {name:<34s} {value:>9d}"
                        for name, value in pool.items()])
        faults = self.fault_totals()
        table("faults fired:", [f"  {name:<34s} {value:>9d}"
                                for name, value in faults.items()])
        other = {
            name: value for name, value in sorted(self.counters.items())
            if not name.startswith(("store.", "pool.", "fault.", "kernel."))
        }
        table("counters:", [f"  {name:<34s} {value:>9d}"
                            for name, value in other.items()])
        table("peak rss by process:", [
            f"  pid {pid:<8s} hwm {entry['hwm_kb'] or 0:>9d} KiB"
            for pid, entry in self.rss_by_process().items()])
        return "\n".join(lines).rstrip() + "\n"

    def render_html(self):
        from repro.reporting.html import html_page, html_table

        parts = []
        timers = [[name, cell["calls"], cell["wall_s"], cell["cpu_s"]]
                  for name, cell in sorted(self.timers.items())]
        if timers:
            parts.append("<h2>timers</h2>")
            parts.append(html_table(
                ["name", "calls", "wall s", "cpu s"], timers))
        counters = [[name, value]
                    for name, value in sorted(self.counters.items())]
        if counters:
            parts.append("<h2>counters</h2>")
            parts.append(html_table(["name", "value"], counters))
        gate = self.gate_metrics()
        if gate:
            parts.append("<h2>behavioral gate metrics</h2>")
            parts.append(html_table(["metric", "value"],
                                    [[name, value]
                                     for name, value in gate.items()]))
        if not parts:
            parts.append('<p class="note">no snapshots recorded</p>')
        return html_page(
            f"telemetry {os.path.basename(self.run_dir)}",
            "\n".join(parts), subtitle=self.summary())
