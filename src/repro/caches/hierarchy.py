"""Two-level cache hierarchy (split L1 + unified LLC).

Matches Table 1: split 64 KiB 2-way L1s and a unified 8-way LLC, 64 B
lines everywhere.  The instruction side carries no traffic in our
synthetic traces (they have no fetch stream), so L1-I exists for
configuration completeness and reports zero accesses; this is recorded in
DESIGN.md as part of the workload substitution.

``warm`` is the functional-warming hot path: it inlines the L1-D and LLC
LRU updates into one loop.
"""

import time
from dataclasses import dataclass, field

from repro import kernels, telemetry
from repro.caches.cache import (
    CacheConfig,
    SetAssocCache,
    VECTOR_BAILOUT_FRACTION,
)
from repro.kernels import native
from repro.kernels.lru import warm_lru_sets
from repro.util.units import KIB, MIB


@dataclass(frozen=True)
class HierarchyConfig:
    """Configuration of the modeled cache hierarchy."""

    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(4 * KIB, assoc=2))
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(4 * KIB, assoc=2))
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(128 * KIB, assoc=8))

    def scaled_llc(self, llc_size_bytes):
        """This config with a different LLC size (for size sweeps)."""
        llc = CacheConfig(llc_size_bytes, assoc=self.llc.assoc,
                          line_bytes=self.llc.line_bytes,
                          policy=self.llc.policy)
        return HierarchyConfig(l1d=self.l1d, l1i=self.l1i, llc=llc)


# Hit levels returned by CacheHierarchy.access.
L1 = "l1"
LLC = "llc"
MEM = "mem"


class CacheHierarchy:
    """L1-D + LLC simulator consuming cacheline numbers."""

    def __init__(self, config, seed=0):
        self.config = config
        self.l1d = SetAssocCache(config.l1d, seed=seed)
        self.llc = SetAssocCache(config.llc, seed=seed)
        self.l1_hits = 0
        self.llc_hits = 0
        self.mem_misses = 0

    def access(self, line):
        """Access one line; returns the hit level (``"l1"|"llc"|"mem"``)."""
        if self.l1d.access(line):
            self.l1_hits += 1
            return L1
        if self.llc.access(line):
            self.llc_hits += 1
            return LLC
        self.mem_misses += 1
        return MEM

    def warm(self, lines):
        """Bulk functional warming over a numpy line array.

        Returns ``(l1_hits, llc_hits, mem_misses)`` for the batch.  Only
        valid for LRU caches (the Table 1 configuration); other policies
        fall back to per-access calls.

        Under the vector kernel backend the two levels run as separate
        batch kernels: the L1 kernel yields the per-access hit mask, and
        the LLC kernel consumes the L1-miss substream — exactly the
        stream the interleaved scalar loop feeds it, since L1 hits never
        reach the LLC.  The native backend fuses both levels into one
        compiled interleaved loop (no bailout regime).
        """
        if not (self.l1d._is_lru and self.llc._is_lru):
            l1_hits = llc_hits = mem = 0
            for line in lines.tolist():
                level = self.access(line)
                if level == L1:
                    l1_hits += 1
                elif level == LLC:
                    llc_hits += 1
                else:
                    mem += 1
            return l1_hits, llc_hits, mem

        backend = kernels.get_backend()
        if len(lines) and backend == "native":
            s = telemetry.session()
            t0 = time.perf_counter() if s is not None else 0.0
            l1_hits, llc_hits = native.warm_hierarchy(
                self.l1d._sets, self.llc._sets, lines,
                self.l1d._mask, self.l1d.assoc,
                self.llc._mask, self.llc.assoc)
            if s is not None:
                s.add_time("kernel.hierarchy_warm",
                           time.perf_counter() - t0)
                s.count("kernel.hierarchy_warm.calls")
            mem = len(lines) - l1_hits - llc_hits
            self.l1d.hits += l1_hits
            self.l1d.misses += len(lines) - l1_hits
            self.llc.hits += llc_hits
            self.llc.misses += mem
            self.l1_hits += l1_hits
            self.llc_hits += llc_hits
            self.mem_misses += mem
            return l1_hits, llc_hits, mem

        if len(lines) and backend == "vector":
            s = telemetry.session()
            t0 = time.perf_counter() if s is not None else 0.0
            result = warm_lru_sets(
                self.l1d._sets, lines, self.l1d._mask, self.l1d.assoc,
                want_access_info=True,
                max_long_window_fraction=VECTOR_BAILOUT_FRACTION)
            if s is not None:
                s.add_time("kernel.hierarchy_warm",
                           time.perf_counter() - t0)
                s.count("kernel.hierarchy_warm.calls")
                if result is None:
                    s.count("kernel.hierarchy_warm.bailout")
            if result is not None:
                l1_hits, l1_mask, _ = result
                self.l1d.hits += l1_hits
                self.l1d.misses += len(lines) - l1_hits
                miss_lines = lines[~l1_mask]
                llc_hits, _ = self.llc.warm(miss_lines)
                mem = len(lines) - l1_hits - llc_hits
                self.l1_hits += l1_hits
                self.llc_hits += llc_hits
                self.mem_misses += mem
                return l1_hits, llc_hits, mem

        l1_sets = self.l1d._sets
        l1_mask = self.l1d._mask
        l1_assoc = self.l1d.assoc
        llc_sets = self.llc._sets
        llc_mask = self.llc._mask
        llc_assoc = self.llc.assoc
        l1_hits = 0
        llc_hits = 0
        for line in lines.tolist():
            entries = l1_sets[line & l1_mask]
            if line in entries:
                if entries[-1] != line:
                    entries.remove(line)
                    entries.append(line)
                l1_hits += 1
                continue
            if len(entries) >= l1_assoc:
                entries.pop(0)
            entries.append(line)
            entries = llc_sets[line & llc_mask]
            if line in entries:
                if entries[-1] != line:
                    entries.remove(line)
                    entries.append(line)
                llc_hits += 1
            else:
                if len(entries) >= llc_assoc:
                    entries.pop(0)
                entries.append(line)
        mem = len(lines) - l1_hits - llc_hits
        self.l1_hits += l1_hits
        self.llc_hits += llc_hits
        self.mem_misses += mem
        self.l1d.hits += l1_hits
        self.l1d.misses += len(lines) - l1_hits
        self.llc.hits += llc_hits
        self.llc.misses += len(lines) - l1_hits - llc_hits
        return l1_hits, llc_hits, mem

    def flush(self):
        self.l1d.flush()
        self.llc.flush()
        self.l1_hits = 0
        self.llc_hits = 0
        self.mem_misses = 0


def paper_hierarchy(llc_paper_bytes=8 * MIB, scale=1.0 / 64.0,
                    l1_scale=0.25):
    """Table 1 hierarchy at a paper-equivalent LLC size and model scale.

    The paper's 1 MiB–512 MiB 8-way LLC scales by ``scale`` (DESIGN.md
    §6: 8 MiB paper -> 128 KiB model at the default 1/64).  The 64 KiB
    L1s scale by the milder ``l1_scale``: what must be preserved for the
    lukewarm-cache mechanics is the ratio between the benchmarks' hot
    sets and the L1 — scaling the L1 all the way to 1 KiB would push
    every hot-set hit out to the LLC and inflate baseline CPI far above
    the paper's.
    """
    l1_bytes = max(1 * KIB, int(64 * KIB * l1_scale))
    llc_bytes = max(4 * KIB, int(llc_paper_bytes * scale))
    return HierarchyConfig(
        l1d=CacheConfig(l1_bytes, assoc=2),
        l1i=CacheConfig(l1_bytes, assoc=2),
        llc=CacheConfig(llc_bytes, assoc=8),
    )
