"""Exact reuse- and stack-distance analysis.

This is the Mattson-style reference that statistical cache modeling
approximates (Section 2.2): *stack distance* is the number of unique
cachelines between two accesses to the same line; *reuse distance* is the
raw access count between them.  A Fenwick tree over trace positions gives
exact stack distances in O(log n) per access (the classic
Bennett–Kruskal algorithm); reuse distances are computed fully vectorized.

These routines serve three roles:

* ground truth in tests for StatStack's reuse-to-stack conversion,
* exact whole-trace miss-ratio curves (all cache sizes in one pass),
* the *oracle trace index* used by the virtualized-profiling substrate:
  :func:`previous_access_index` is how Explorers locate the last access of
  a key cacheline (the hardware would find it by running with watchpoints;
  the trace index tells us which watchpoint stop would have been the true
  positive and how many false positives precede it).
"""

import time

import numpy as np

from repro import kernels, telemetry


def previous_access_index(lines):
    """For each access, the index of the previous access to the same line.

    Returns an ``int64`` array; ``-1`` marks a line's first access.
    """
    lines = np.asarray(lines)
    n = lines.shape[0]
    prev = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return prev
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    same = sorted_lines[1:] == sorted_lines[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def next_access_index(lines):
    """For each access, the index of the next access to the same line.

    Returns an ``int64`` array; ``-1`` marks a line's last access.
    """
    lines = np.asarray(lines)
    n = lines.shape[0]
    nxt = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return nxt
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    same = sorted_lines[1:] == sorted_lines[:-1]
    nxt[order[:-1][same]] = order[1:][same]
    return nxt


def reuse_and_stack_distances(lines):
    """Exact (reuse, stack) distance per access.

    Both arrays use ``-1`` for cold (first) accesses.  Reuse distance is
    the number of accesses strictly between the reuse pair; stack distance
    is the number of *distinct* lines strictly between them, so an
    immediate re-reference has reuse == stack == 0 and a fully-associative
    LRU cache of ``C`` lines hits iff ``stack < C``.

    Dispatches on the kernel backend: the vector backend uses the
    merge-count kernel (:mod:`repro.kernels.stackdist`), the native
    backend the compiled Fenwick loop (:mod:`repro.kernels.native`),
    the scalar backend the Fenwick-tree reference below; results are
    bit-identical.
    """
    s = telemetry.session()
    backend = kernels.get_backend()
    if backend != "scalar":
        if backend == "native":
            from repro.kernels.native import (
                reuse_and_stack_distances_native as kernel,
            )
        else:
            from repro.kernels.stackdist import (
                reuse_and_stack_distances_vector as kernel,
            )
        if s is None:
            return kernel(lines)
        t0 = time.perf_counter()
        out = kernel(lines)
        s.add_time("kernel.stack_distances", time.perf_counter() - t0)
        return out
    if s is None:
        return reuse_and_stack_distances_scalar(lines)
    t0 = time.perf_counter()
    out = reuse_and_stack_distances_scalar(lines)
    s.add_time("kernel.stack_distances.scalar", time.perf_counter() - t0)
    return out


def reuse_and_stack_distances_scalar(lines):
    """Fenwick-tree reference implementation (Bennett-Kruskal)."""
    lines = np.asarray(lines)
    n = lines.shape[0]
    prev = previous_access_index(lines)
    reuse = np.where(prev >= 0, np.arange(n, dtype=np.int64) - prev - 1, -1)
    stack = np.full(n, -1, dtype=np.int64)

    tree = FenwickTree(n + 1)
    prev_list = prev.tolist()
    add = tree.add
    prefix = tree.prefix_sum
    for i, p in enumerate(prev_list):
        if p >= 0:
            # Marked positions in (p, i) are the most-recent positions of
            # distinct lines touched since p.
            stack[i] = prefix(i) - prefix(p + 1)
            add(p + 1, -1)
        add(i + 1, 1)
    return reuse, stack


def miss_count_for_sizes(stack_distances, sizes_in_lines):
    """Fully-associative LRU miss counts for many cache sizes at once.

    ``stack_distances`` uses ``-1`` for cold accesses (always misses).
    Returns an ``int64`` array aligned with ``sizes_in_lines``.
    """
    stack_distances = np.asarray(stack_distances)
    sizes = np.asarray(sizes_in_lines, dtype=np.int64)
    cold = int(np.count_nonzero(stack_distances < 0))
    warm = stack_distances[stack_distances >= 0]
    # miss iff stack >= size; count via sorted search.
    warm_sorted = np.sort(warm)
    hits_below = np.searchsorted(warm_sorted, sizes, side="left")
    return cold + (warm_sorted.size - hits_below)


class FenwickTree:
    """Binary indexed tree over ``[1, n]`` with integer point updates."""

    def __init__(self, n):
        if n <= 0:
            raise ValueError("tree size must be positive")
        self.n = int(n)
        self._tree = [0] * (self.n + 1)

    def add(self, index, value):
        """Add ``value`` at 1-based ``index``."""
        if not 1 <= index <= self.n:
            raise IndexError(f"index {index} outside [1, {self.n}]")
        tree = self._tree
        while index <= self.n:
            tree[index] += value
            index += index & (-index)

    def prefix_sum(self, index):
        """Sum of values at positions ``[1, index]`` (0 if index <= 0)."""
        if index > self.n:
            index = self.n
        tree = self._tree
        total = 0
        while index > 0:
            total += tree[index]
            index -= index & (-index)
        return total

    def range_sum(self, lo, hi):
        """Sum over 1-based inclusive range ``[lo, hi]``."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)


class StackDistanceProfiler:
    """Convenience wrapper: profile a trace once, query many cache sizes."""

    def __init__(self, lines):
        self.reuse, self.stack = reuse_and_stack_distances(lines)
        self.n_accesses = int(np.asarray(lines).shape[0])

    def miss_ratio(self, size_in_lines):
        """Fully-associative LRU miss ratio at one cache size."""
        if self.n_accesses == 0:
            return 0.0
        misses = miss_count_for_sizes(self.stack, [size_in_lines])[0]
        return misses / self.n_accesses

    def miss_ratio_curve(self, sizes_in_lines):
        """Miss ratios across sizes (the working-set curve substrate)."""
        if self.n_accesses == 0:
            return np.zeros(len(sizes_in_lines))
        misses = miss_count_for_sizes(self.stack, sizes_in_lines)
        return misses / self.n_accesses
