"""Set-associative cache model.

Two internal representations are used, chosen at construction:

* LRU (the paper's Table 1 policy) keeps each set as a Python list in
  recency order (LRU at index 0).  Bulk warming — simulating every access
  of a warm-up interval, the very overhead the paper attacks — dispatches
  through the kernel backend (:mod:`repro.kernels`): the vector backend
  computes hits from per-set stack distances in numpy and falls back to
  the scalar loop for thrash-heavy batches where the loop is
  competitive; the scalar backend is the per-access reference.
* Other policies (random, tree-PLRU, NMRU) use a way-table plus a
  pluggable :mod:`~repro.caches.replacement` policy object.
"""

import time
from dataclasses import dataclass

import numpy as np

from repro import kernels, telemetry
from repro.caches.replacement import make_policy
from repro.kernels import native
from repro.kernels.lru import warm_lru_sets
from repro.util.units import CACHELINE_BYTES, format_size

#: Long-window batch fraction beyond which the vector warm kernel defers
#: to the scalar loop (see ``warm_lru_sets(max_long_window_fraction=...)``).
VECTOR_BAILOUT_FRACTION = 0.05


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache."""

    size_bytes: int
    assoc: int
    line_bytes: int = CACHELINE_BYTES
    policy: str = "lru"

    def __post_init__(self):
        if self.size_bytes <= 0 or self.assoc <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry must be positive")
        if self.size_bytes % (self.assoc * self.line_bytes):
            raise ValueError("size must be a multiple of assoc * line size")
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("number of sets must be a power of two")

    @property
    def n_lines(self):
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self):
        return self.n_lines // self.assoc

    def describe(self):
        return (f"{format_size(self.size_bytes)}, {self.assoc}-way "
                f"{self.policy.upper()}, {self.line_bytes} B line")


class SetAssocCache:
    """A set-associative cache indexed by cacheline number.

    All methods take *line* addresses (byte address >> 6), matching the
    trace's memory view.
    """

    def __init__(self, config, seed=0):
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.assoc
        self._mask = self.n_sets - 1
        self.hits = 0
        self.misses = 0
        self._is_lru = config.policy == "lru"
        if self._is_lru:
            self._sets = [[] for _ in range(self.n_sets)]
            self._policy = None
        else:
            self._tags = [[None] * self.assoc for _ in range(self.n_sets)]
            self._ways = [dict() for _ in range(self.n_sets)]
            self._policy = make_policy(
                config.policy, self.n_sets, self.assoc, seed=seed)

    # -- single-access interface -----------------------------------------

    def access(self, line):
        """Access ``line``; update state; return True on hit."""
        if self._is_lru:
            return self._access_lru(line)
        return self._access_policy(line)

    def _access_lru(self, line):
        entries = self._sets[line & self._mask]
        try:
            index = entries.index(line)      # one scan for both in + find
        except ValueError:
            if len(entries) >= self.assoc:
                entries.pop(0)
            entries.append(line)
            self.misses += 1
            return False
        if index != len(entries) - 1:
            del entries[index]
            entries.append(line)
        self.hits += 1
        return True

    def _access_policy(self, line):
        set_idx = line & self._mask
        ways = self._ways[set_idx]
        way = ways.get(line)
        if way is not None:
            self._policy.touch(set_idx, way)
            self.hits += 1
            return True
        tags = self._tags[set_idx]
        if len(ways) < self.assoc:
            way = len(ways)
        else:
            way = self._policy.victim(set_idx)
            del ways[tags[way]]
        tags[way] = line
        ways[line] = way
        self._policy.fill(set_idx, way)
        self.misses += 1
        return False

    # -- bulk interface ----------------------------------------------------

    def warm(self, lines):
        """Access every line of a numpy array; return (hits, misses).

        This is the functional-warming hot loop.  For LRU caches the
        vector backend resolves the batch in numpy (bit-identical to the
        scalar loop); the native backend runs the fused C loop (exact in
        every regime — no bailout); the scalar backend — and
        thrash-heavy batches the vector kernel bails out of — run the
        per-access reference loop.
        """
        s = telemetry.session()
        backend = kernels.get_backend()
        if self._is_lru and len(lines) and backend != "scalar":
            t0 = time.perf_counter() if s is not None else 0.0
            if backend == "native":
                result = native.warm_lru(
                    self._sets, lines, self._mask, self.assoc)
            else:
                result = warm_lru_sets(
                    self._sets, lines, self._mask, self.assoc,
                    max_long_window_fraction=VECTOR_BAILOUT_FRACTION)
            if s is not None:
                s.add_time("kernel.bulk_warm",
                           time.perf_counter() - t0)
                s.count("kernel.bulk_warm.calls")
                if result is None:
                    s.count("kernel.bulk_warm.bailout")
            if result is not None:
                hits = result[0]
                misses = len(lines) - hits
                self.hits += hits
                self.misses += misses
                return hits, misses
        if s is not None:
            t0 = time.perf_counter()
            out = self.warm_scalar(lines)
            s.add_time("kernel.bulk_warm.scalar",
                       time.perf_counter() - t0)
            return out
        return self.warm_scalar(lines)

    def warm_scalar(self, lines):
        """Per-access reference implementation of :meth:`warm`."""
        if not self._is_lru:
            hits = 0
            for line in lines.tolist():
                hits += self._access_policy(line)
            misses = len(lines) - hits
            return hits, misses

        sets = self._sets
        mask = self._mask
        assoc = self.assoc
        hits = 0
        for line in lines.tolist():
            entries = sets[line & mask]
            if line in entries:
                if entries[-1] != line:
                    entries.remove(line)
                    entries.append(line)
                hits += 1
            else:
                if len(entries) >= assoc:
                    entries.pop(0)
                entries.append(line)
        misses = len(lines) - hits
        self.hits += hits
        self.misses += misses
        return hits, misses

    def warm_profile(self, lines):
        """Bulk warm that also reports per-access outcomes.

        Returns ``(hits, hit_mask, occupancy_before)``: the boolean hit
        mask and the number of valid ways in the referenced set *before*
        each access (what :meth:`set_occupancy` would have returned), in
        batch order.  LRU only — the vectorized classification path in
        :mod:`repro.sampling.classify` is built on it.
        """
        if not self._is_lru:
            raise ValueError("warm_profile requires an LRU cache")
        n = len(lines)
        backend = kernels.get_backend()
        if n and backend != "scalar":
            s = telemetry.session()
            t0 = time.perf_counter() if s is not None else 0.0
            if backend == "native":
                hits, hit_mask, occupancy = native.warm_lru(
                    self._sets, lines, self._mask, self.assoc,
                    want_access_info=True)
            else:
                hits, hit_mask, occupancy = warm_lru_sets(
                    self._sets, lines, self._mask, self.assoc,
                    want_access_info=True)
            if s is not None:
                s.add_time("kernel.warm_profile",
                           time.perf_counter() - t0)
            self.hits += hits
            self.misses += n - hits
            return hits, hit_mask, occupancy
        hit_mask = np.zeros(n, dtype=bool)
        occupancy = np.zeros(n, dtype=np.int64)
        for i, line in enumerate(lines.tolist()):
            occupancy[i] = len(self._sets[line & self._mask])
            hit_mask[i] = self._access_lru(line)
        return int(np.count_nonzero(hit_mask)), hit_mask, occupancy

    def insert(self, line):
        """Fill ``line`` without counting a hit or miss (prefetch path).

        No-op if the line is already resident; evicts per policy if the
        set is full.
        """
        if self.contains(line):
            return
        if self._is_lru:
            entries = self._sets[line & self._mask]
            if len(entries) >= self.assoc:
                entries.pop(0)
            entries.append(line)
            return
        set_idx = line & self._mask
        ways = self._ways[set_idx]
        tags = self._tags[set_idx]
        if len(ways) < self.assoc:
            way = len(ways)
        else:
            way = self._policy.victim(set_idx)
            del ways[tags[way]]
        tags[way] = line
        ways[line] = way
        self._policy.fill(set_idx, way)

    # -- inspection (no state change) --------------------------------------

    def contains(self, line):
        """True if ``line`` is resident (does not update recency)."""
        if self._is_lru:
            return line in self._sets[line & self._mask]
        return line in self._ways[line & self._mask]

    def set_occupancy(self, line):
        """Number of valid ways in the set that ``line`` maps to."""
        if self._is_lru:
            return len(self._sets[line & self._mask])
        return len(self._ways[line & self._mask])

    def set_is_full(self, line):
        """True if the set that ``line`` maps to has no free way."""
        return self.set_occupancy(line) >= self.assoc

    def resident_lines(self):
        """All resident lines (order unspecified)."""
        if self._is_lru:
            return [l for entries in self._sets for l in entries]
        return [l for ways in self._ways for l in ways]

    def flush(self):
        """Invalidate everything and reset hit/miss counters."""
        self.hits = 0
        self.misses = 0
        if self._is_lru:
            self._sets = [[] for _ in range(self.n_sets)]
        else:
            self._tags = [[None] * self.assoc for _ in range(self.n_sets)]
            self._ways = [dict() for _ in range(self.n_sets)]

    def __repr__(self):
        return f"SetAssocCache({self.config.describe()})"
