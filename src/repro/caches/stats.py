"""Access-outcome bookkeeping shared by simulators and predictors."""

from dataclasses import dataclass, field


#: Classification labels used throughout the library (Figure 3's taxonomy).
HIT_LUKEWARM = "lukewarm_hit"
HIT_MSHR = "mshr_hit"
MISS_CONFLICT = "conflict_miss"
MISS_COHERENCE = "coherence_miss"
MISS_CAPACITY = "capacity_miss"
MISS_COLD = "cold_miss"
HIT_WARMING = "warming_hit"          # a would-be warming miss, modeled as hit

ALL_OUTCOMES = (
    HIT_LUKEWARM,
    HIT_MSHR,
    MISS_CONFLICT,
    MISS_COHERENCE,
    MISS_CAPACITY,
    MISS_COLD,
    HIT_WARMING,
)

#: Outcomes that count as LLC misses for MPKI/CPI purposes.
MISS_OUTCOMES = frozenset(
    {MISS_CONFLICT, MISS_COHERENCE, MISS_CAPACITY, MISS_COLD})


@dataclass
class AccessStats:
    """Counts of per-access outcomes for one detailed region (or a sum)."""

    counts: dict = field(default_factory=lambda: {o: 0 for o in ALL_OUTCOMES})

    def record(self, outcome):
        if outcome not in self.counts:
            raise ValueError(f"unknown outcome {outcome!r}")
        self.counts[outcome] += 1

    @property
    def total(self):
        return sum(self.counts.values())

    @property
    def misses(self):
        return sum(self.counts[o] for o in MISS_OUTCOMES)

    @property
    def hits(self):
        return self.total - self.misses

    def miss_ratio(self):
        return self.misses / self.total if self.total else 0.0

    def merge(self, other):
        """Accumulate another stats object into this one (returns self)."""
        for outcome, count in other.counts.items():
            self.counts[outcome] = self.counts.get(outcome, 0) + count
        return self

    def as_dict(self):
        return dict(self.counts)
