"""Cache simulator substrate.

Implements the memory-side microarchitecture the paper simulates in gem5:
set-associative caches with pluggable replacement (Table 1 uses LRU; the
generality discussion of Section 4.1 motivates random, tree-PLRU and NMRU
as well), MSHR files for miss tracking, a two-level L1/LLC hierarchy, and
an exact stack/reuse-distance profiler (the Mattson reference that
statistical cache modeling approximates).
"""

from repro.caches.cache import CacheConfig, SetAssocCache
from repro.caches.replacement import (
    REPLACEMENT_POLICIES,
    LRUPolicy,
    NMRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)
from repro.caches.mshr import MSHRFile
from repro.caches.hierarchy import CacheHierarchy, HierarchyConfig
from repro.caches.stack import (
    FenwickTree,
    StackDistanceProfiler,
    miss_count_for_sizes,
    reuse_and_stack_distances,
)
from repro.caches.stats import AccessStats

__all__ = [
    "CacheConfig",
    "SetAssocCache",
    "REPLACEMENT_POLICIES",
    "LRUPolicy",
    "NMRUPolicy",
    "RandomPolicy",
    "TreePLRUPolicy",
    "make_policy",
    "MSHRFile",
    "CacheHierarchy",
    "HierarchyConfig",
    "FenwickTree",
    "StackDistanceProfiler",
    "miss_count_for_sizes",
    "reuse_and_stack_distances",
    "AccessStats",
]
