"""Miss Status Holding Registers.

MSHRs track outstanding misses; a request to a line with an outstanding
miss is an *MSHR hit* (a delayed hit) rather than a new miss.  Section
3.1.2 of the paper models MSHR hits as cache hits (functional simulation)
or delayed hits (detailed simulation); its lukewarm-cache statistics
(96.7 % of requests hit or delayed-hit in a 64 KiB L1-D with 8 MSHRs)
depend on this component.

Time is measured in *access indices*: a miss occupies an entry for
``window`` subsequent accesses, a trace-driven stand-in for the miss
latency divided by the per-access cycle cost.
"""


class MSHRFile:
    """Fixed-capacity table of outstanding line misses."""

    def __init__(self, n_entries, window=24):
        if n_entries <= 0:
            raise ValueError("n_entries must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        self.n_entries = int(n_entries)
        self.window = int(window)
        self._outstanding = {}
        self.mshr_hits = 0
        self.allocations = 0
        self.allocation_failures = 0

    def _expire(self, now):
        if not self._outstanding:
            return
        expired = [line for line, t in self._outstanding.items() if t <= now]
        for line in expired:
            del self._outstanding[line]

    def lookup(self, line, now):
        """True if ``line`` has an outstanding miss at access index ``now``."""
        self._expire(now)
        if line in self._outstanding:
            self.mshr_hits += 1
            return True
        return False

    def allocate(self, line, now):
        """Allocate an entry for a new miss; returns False if full.

        A full MSHR file would stall the pipeline; for classification
        purposes the access is simply treated as an ordinary miss.
        """
        self._expire(now)
        if len(self._outstanding) >= self.n_entries:
            self.allocation_failures += 1
            return False
        self._outstanding[line] = now + self.window
        self.allocations += 1
        return True

    @property
    def occupancy(self):
        return len(self._outstanding)

    def reset(self):
        self._outstanding.clear()
        self.mshr_hits = 0
        self.allocations = 0
        self.allocation_failures = 0
