"""Replacement policies for set-associative caches.

Each policy manages victim selection for one cache; per-set state lives in
the policy object, indexed by set number.  The policy operates on *way*
indices; the cache owns the tag array.

LRU is the paper's configuration (Table 1).  Random, tree-PLRU and NMRU
support the generality argument of Section 4.1 (statistical models exist
for these policies; our StatCache module models random replacement).
"""

import numpy as np

from repro.util.rng import child_rng


class ReplacementPolicy:
    """Interface: called by :class:`~repro.caches.cache.SetAssocCache`."""

    name = "abstract"

    def __init__(self, n_sets, assoc):
        self.n_sets = int(n_sets)
        self.assoc = int(assoc)

    def touch(self, set_idx, way):
        """Record a hit on ``way`` of ``set_idx``."""

    def fill(self, set_idx, way):
        """Record a fill into ``way`` of ``set_idx``."""
        self.touch(set_idx, way)

    def victim(self, set_idx):
        """Choose the way to evict from a full ``set_idx``."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used via per-set recency stamps."""

    name = "lru"

    def __init__(self, n_sets, assoc):
        super().__init__(n_sets, assoc)
        self._stamp = np.zeros((n_sets, assoc), dtype=np.int64)
        self._clock = 0

    def touch(self, set_idx, way):
        self._clock += 1
        self._stamp[set_idx, way] = self._clock

    def victim(self, set_idx):
        return int(np.argmin(self._stamp[set_idx]))


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim (StatCache's modeled policy)."""

    name = "random"

    def __init__(self, n_sets, assoc, seed=0):
        super().__init__(n_sets, assoc)
        self._rng = child_rng(seed, "random-replacement", n_sets, assoc)

    def victim(self, set_idx):
        return int(self._rng.integers(0, self.assoc))


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU (requires power-of-two associativity)."""

    name = "tree-plru"

    def __init__(self, n_sets, assoc):
        if assoc & (assoc - 1):
            raise ValueError("tree-PLRU requires power-of-two associativity")
        super().__init__(n_sets, assoc)
        # Node k's children are 2k+1, 2k+2; assoc-1 internal nodes per set.
        self._bits = np.zeros((n_sets, max(1, assoc - 1)), dtype=np.uint8)

    def touch(self, set_idx, way):
        bits = self._bits[set_idx]
        node = 0
        lo, hi = 0, self.assoc
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                bits[node] = 1          # point away from the touched half
                node = 2 * node + 1
                hi = mid
            else:
                bits[node] = 0
                node = 2 * node + 2
                lo = mid
        self._bits[set_idx] = bits

    def victim(self, set_idx):
        bits = self._bits[set_idx]
        node = 0
        lo, hi = 0, self.assoc
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if bits[node]:              # 1 points to the colder half
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo


class NMRUPolicy(ReplacementPolicy):
    """Not-most-recently-used: random victim excluding the MRU way."""

    name = "nmru"

    def __init__(self, n_sets, assoc, seed=0):
        super().__init__(n_sets, assoc)
        self._mru = np.zeros(n_sets, dtype=np.int32)
        self._rng = child_rng(seed, "nmru-replacement", n_sets, assoc)

    def touch(self, set_idx, way):
        self._mru[set_idx] = way

    def victim(self, set_idx):
        if self.assoc == 1:
            return 0
        way = int(self._rng.integers(0, self.assoc - 1))
        if way >= self._mru[set_idx]:
            way += 1
        return way


REPLACEMENT_POLICIES = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "tree-plru": TreePLRUPolicy,
    "nmru": NMRUPolicy,
}


def make_policy(name, n_sets, assoc, seed=0):
    """Instantiate a replacement policy by name."""
    try:
        cls = REPLACEMENT_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; "
            f"choose from {sorted(REPLACEMENT_POLICIES)}") from None
    if cls in (RandomPolicy, NMRUPolicy):
        return cls(n_sets, assoc, seed=seed)
    return cls(n_sets, assoc)
