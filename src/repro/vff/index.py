"""Per-line and per-page access-position indices over a trace.

A real DeLorean run discovers reuses by executing with watchpoints; the
trace-driven substitute answers the same questions from a sorted index:
*when was line L last accessed before access position P?* and *how many
accesses hit page G inside a window?* (the stop count a page-protection
watchpoint would have taken).  Building the index is two argsorts; every
query is a binary search.

Two construction modes exist:

* the classic in-RAM argsort (``TraceIndex(trace)``), still the default
  for synthetic workloads whose traces are RAM-resident anyway;
* a **chunked, spillable** build (:func:`build_index_tables` /
  :meth:`TraceIndex.build_spilled`): the trace is scanned in bounded
  windows, the grouped position tables — *including* the successor and
  rank tables the batched watchpoint kernels need — are written to
  spill files, published through the artifact store as an uncompressed
  npz, and served back as read-only memory maps
  (:meth:`TraceIndex.open`).  Queries then touch only the table pages
  the watchpoints direct them to, so a strategy run's resident set
  scales with the sampled regions rather than the trace length.
"""

import os
import shutil
import tempfile
import time
from dataclasses import dataclass

import numpy as np

from repro import kernels, telemetry
from repro.util.units import CACHELINE_SHIFT, PAGE_SHIFT

#: Default accesses per construction chunk (~24 MiB of transient arrays
#: at 8-byte keys; override per call or with ``REPRO_INDEX_CHUNK``).
DEFAULT_CHUNK_ACCESSES = 1 << 20

_PAGE_OF_LINE_SHIFT = PAGE_SHIFT - CACHELINE_SHIFT


def _as_int64(array):
    """``array`` as contiguous int64 — without copying when it already
    is (memory-mapped views must be adopted, not materialized)."""
    array = np.asanyarray(array)
    if array.dtype != np.int64 or not array.flags.c_contiguous:
        array = np.ascontiguousarray(array, dtype=np.int64)
    return array


class _PositionIndex:
    """Sorted access positions grouped by key (line or page)."""

    def __init__(self, keys):
        keys = np.asarray(keys)
        order = np.argsort(keys, kind="stable")
        self._positions = order.astype(np.int64)
        sorted_keys = keys[order]
        unique, starts = np.unique(sorted_keys, return_index=True)
        self._keys = unique
        self._starts = np.concatenate(
            (starts, [keys.shape[0]])).astype(np.int64)
        self._successors = None
        self._ranks = None

    @classmethod
    def from_tables(cls, positions, keys, starts, successors=None,
                    ranks=None):
        """Rebuild from persisted tables, skipping the argsort.

        ``positions``/``keys``/``starts`` may be memory-mapped views —
        they are adopted as-is (no copy) when already the right dtype,
        which is what keeps a spilled index out of RAM.  Persisted
        ``successors``/``ranks`` tables short-circuit the lazy in-RAM
        builds the batched watchpoint kernels would otherwise trigger.
        """
        index = cls.__new__(cls)
        index._positions = _as_int64(positions)
        index._keys = np.asanyarray(keys)
        index._starts = _as_int64(starts)
        index._successors = None if successors is None else \
            _as_int64(successors)
        index._ranks = None if ranks is None else _as_int64(ranks)
        return index

    def tables(self, prefix):
        """The persistable position tables, namespaced by ``prefix``."""
        return {
            f"{prefix}_positions": self._positions,
            f"{prefix}_keys": self._keys,
            f"{prefix}_starts": self._starts,
        }

    def successors(self):
        """Next same-key position for *every* access position (-1 if last).

        The grouped table already stores each key's run contiguously in
        ascending position order, so the successor of a run element is
        its right neighbour; scattering through the (permutation)
        position table turns that into an O(1) lookup per access.  Built
        lazily, once, in a single vectorized pass.
        """
        if self._successors is None:
            n = self._positions.shape[0]
            succ_sorted = np.empty(n, dtype=np.int64)
            if n:
                succ_sorted[:-1] = self._positions[1:]
                succ_sorted[-1] = -1
                succ_sorted[self._starts[1:] - 1] = -1   # run boundaries
            successors = np.empty(n, dtype=np.int64)
            successors[self._positions] = succ_sorted
            self._successors = successors
        return self._successors

    def ranks(self):
        """Rank of every access position within its key's run.

        ``ranks()[p]`` is the number of same-key accesses strictly
        before position ``p``; the difference of two same-key ranks is
        therefore the access count between them — the O(1) stop-count
        primitive behind the batched watchpoint kernels.
        """
        if self._ranks is None:
            n = self._positions.shape[0]
            lengths = np.diff(self._starts)
            rank_sorted = (np.arange(n, dtype=np.int64)
                           - np.repeat(self._starts[:-1], lengths))
            ranks = np.empty(n, dtype=np.int64)
            ranks[self._positions] = rank_sorted
            self._ranks = ranks
        return self._ranks

    def positions(self, key):
        """Ascending access positions of ``key`` (empty if unseen)."""
        idx = int(np.searchsorted(self._keys, key))
        if idx >= self._keys.shape[0] or self._keys[idx] != key:
            return np.empty(0, dtype=np.int64)
        return self._positions[self._starts[idx]:self._starts[idx + 1]]

    def count_in(self, key, lo, hi):
        """Number of accesses to ``key`` with position in ``[lo, hi)``."""
        positions = self.positions(key)
        return int(np.searchsorted(positions, hi, side="left")
                   - np.searchsorted(positions, lo, side="left"))

    def last_in(self, key, lo, hi):
        """Largest position of ``key`` in ``[lo, hi)``, or -1."""
        positions = self.positions(key)
        idx = int(np.searchsorted(positions, hi, side="left")) - 1
        if idx < 0 or positions[idx] < lo:
            return -1
        return int(positions[idx])

    def first_in(self, key, lo, hi):
        """Smallest position of ``key`` in ``[lo, hi)``, or -1."""
        positions = self.positions(key)
        idx = int(np.searchsorted(positions, lo, side="left"))
        if idx >= positions.shape[0] or positions[idx] >= hi:
            return -1
        return int(positions[idx])

    def batch_counts_and_last(self, keys, lo, hi):
        """Window counts and last positions for many keys at once.

        Equivalent to per-key ``count_in`` / ``last_in`` over ``[lo,
        hi)`` but batched: every key's position run is gathered with
        one grouped-arange, masked against the window, and reduced.
        Gathering is window-independent (it touches every occurrence of
        every key), so when the runs dwarf the per-key binary-search
        cost the loop is used instead — results are identical either
        way.  Returns ``(counts, last)`` aligned with ``keys`` (``-1``
        marks a key unseen in the window).
        """
        keys = np.asarray(keys, dtype=np.int64)
        n_keys = keys.shape[0]
        counts = np.zeros(n_keys, dtype=np.int64)
        last = np.full(n_keys, -1, dtype=np.int64)
        if n_keys == 0 or hi <= lo or self._keys.shape[0] == 0:
            return counts, last
        slot = np.minimum(np.searchsorted(self._keys, keys),
                          self._keys.shape[0] - 1)
        present = self._keys[slot] == keys
        starts = np.where(present, self._starts[slot], 0)
        lengths = np.where(present, self._starts[slot + 1] - starts, 0)
        total = int(lengths.sum())
        if total == 0:
            return counts, last
        if total > 256 * n_keys:
            for k in np.flatnonzero(present).tolist():
                run = self._positions[starts[k]:starts[k] + lengths[k]]
                at_hi = int(np.searchsorted(run, hi, side="left"))
                at_lo = int(np.searchsorted(run, lo, side="left"))
                counts[k] = at_hi - at_lo
                if at_hi > at_lo:
                    last[k] = int(run[at_hi - 1])
            return counts, last
        key_of = np.repeat(np.arange(n_keys, dtype=np.int64), lengths)
        cum = np.cumsum(lengths) - lengths
        flat = (np.repeat(starts - cum, lengths)
                + np.arange(total, dtype=np.int64))
        positions = self._positions[flat]
        in_window = (positions >= lo) & (positions < hi)
        matched_key = key_of[in_window]
        matched_pos = positions[in_window]
        counts += np.bincount(matched_key, minlength=n_keys)
        np.maximum.at(last, matched_key, matched_pos)
        return counts, last

    def multi_counts_and_last(self, keys, los, his):
        """Per-entry window counts and last positions, many windows at
        once.

        Aligned arrays: entry ``i`` asks for ``keys[i]`` over
        ``[los[i], his[i])`` — the multi-window generalization of
        :meth:`batch_counts_and_last` (which this reduces to when every
        entry shares one window).  One gather serves *all* windows, so
        a planner profiling every region's window in a single call
        touches each mapped position run once instead of once per
        region.  The same run-size escape applies: when the gathered
        runs dwarf the per-entry binary searches, the loop wins and
        produces identical values.  Returns ``(counts, last)`` aligned
        with ``keys`` (``-1`` marks an entry unseen in its window).
        """
        keys = np.asarray(keys, dtype=np.int64)
        los = np.asarray(los, dtype=np.int64)
        his = np.asarray(his, dtype=np.int64)
        n_keys = keys.shape[0]
        counts = np.zeros(n_keys, dtype=np.int64)
        last = np.full(n_keys, -1, dtype=np.int64)
        if n_keys == 0 or self._keys.shape[0] == 0:
            return counts, last
        slot = np.minimum(np.searchsorted(self._keys, keys),
                          self._keys.shape[0] - 1)
        present = (self._keys[slot] == keys) & (his > los)
        starts = np.where(present, self._starts[slot], 0)
        lengths = np.where(present, self._starts[slot + 1] - starts, 0)
        total = int(lengths.sum())
        if total == 0:
            return counts, last
        if total > 256 * n_keys:
            for k in np.flatnonzero(lengths).tolist():
                run = self._positions[starts[k]:starts[k] + lengths[k]]
                at_hi = int(np.searchsorted(run, his[k], side="left"))
                at_lo = int(np.searchsorted(run, los[k], side="left"))
                counts[k] = at_hi - at_lo
                if at_hi > at_lo:
                    last[k] = int(run[at_hi - 1])
            return counts, last
        key_of = np.repeat(np.arange(n_keys, dtype=np.int64), lengths)
        cum = np.cumsum(lengths) - lengths
        flat = (np.repeat(starts - cum, lengths)
                + np.arange(total, dtype=np.int64))
        positions = self._positions[flat]
        in_window = ((positions >= los[key_of])
                     & (positions < his[key_of]))
        matched_key = key_of[in_window]
        counts += np.bincount(matched_key, minlength=n_keys)
        np.maximum.at(last, matched_key, positions[in_window])
        return counts, last


@dataclass
class IndexBuildStats:
    """What the chunked builder materialized, for bounded-RSS proofs.

    ``peak_transient_bytes`` is the largest sum of in-RAM temporaries
    any single chunk step allocated — the builder's working set beyond
    the (spillable) output tables and the O(unique keys) merge state.
    """

    n_accesses: int
    chunk_accesses: int
    n_chunks: int
    peak_transient_bytes: int
    key_state_bytes: int
    table_bytes: int


def default_chunk_accesses():
    """Chunk length from ``REPRO_INDEX_CHUNK`` (accesses), or default."""
    raw = os.environ.get("REPRO_INDEX_CHUNK", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_CHUNK_ACCESSES


def build_index_tables(trace, chunk_accesses=None, allocate=None):
    """Build the full grouped table set in bounded chunks.

    Scans ``trace.mem_line`` (which may be a memory map) in windows of
    ``chunk_accesses`` and produces, for both granularities, the same
    ``positions``/``keys``/``starts`` tables an in-RAM argsort would —
    *plus* the ``successors`` and ``ranks`` tables the batched
    watchpoint kernels otherwise build lazily in RAM.  Output arrays
    come from ``allocate(name, shape, dtype)`` so callers choose where
    the O(accesses) product lives (heap, or spill-file memmaps); the
    builder itself only ever materializes O(chunk + unique keys).

    Equivalence to the argsort build: the scatter is a counting sort —
    chunks are scanned in ascending position order and each chunk's
    occurrences are placed in key-run order behind per-key cursors, so
    every run holds its positions ascending, exactly like a stable
    argsort by key.

    Returns ``(tables, stats)``.
    """
    build_t0 = time.perf_counter()
    n = int(trace.n_accesses)
    chunk = max(1, int(chunk_accesses if chunk_accesses is not None
                       else default_chunk_accesses()))
    if allocate is None:
        def allocate(name, shape, dtype):
            return np.empty(shape, dtype=dtype)
    mem_line = trace.mem_line
    peak_transient = 0
    granularities = ("lines", "pages")

    def chunk_keys(lo, hi):
        lines = np.asarray(mem_line[lo:hi], dtype=np.int64)
        return {"lines": lines, "pages": lines >> _PAGE_OF_LINE_SHIFT}

    # Pass 1: per-key occurrence counts (merged chunk-by-chunk).
    keys = {name: np.empty(0, dtype=np.int64) for name in granularities}
    counts = {name: np.empty(0, dtype=np.int64) for name in granularities}
    for lo in range(0, n, chunk):
        batch = chunk_keys(lo, min(n, lo + chunk))
        transient = sum(a.nbytes for a in batch.values())
        for name in granularities:
            unique, chunk_counts = np.unique(batch[name], return_counts=True)
            merged = np.concatenate((keys[name], unique))
            weights = np.concatenate((counts[name], chunk_counts))
            merged_keys, inverse = np.unique(merged, return_inverse=True)
            merged_counts = np.zeros(merged_keys.shape[0], dtype=np.int64)
            np.add.at(merged_counts, inverse, weights)
            keys[name], counts[name] = merged_keys, merged_counts
            transient += (unique.nbytes + chunk_counts.nbytes
                          + merged.nbytes + weights.nbytes + inverse.nbytes)
        peak_transient = max(peak_transient, transient)

    tables = {}
    starts = {}
    for name in granularities:
        n_keys = keys[name].shape[0]
        run_starts = np.empty(n_keys + 1, dtype=np.int64)
        run_starts[0] = 0
        np.cumsum(counts[name], out=run_starts[1:])
        starts[name] = run_starts
        key_table = allocate(f"{name}_keys", (n_keys,), np.int64)
        key_table[:] = keys[name]
        start_table = allocate(f"{name}_starts", (n_keys + 1,), np.int64)
        start_table[:] = run_starts
        tables[f"{name}_keys"] = key_table
        tables[f"{name}_starts"] = start_table
        for part in ("positions", "successors", "ranks"):
            tables[f"{name}_{part}"] = allocate(f"{name}_{part}", (n,),
                                                np.int64)

    # Pass 2: counting-sort scatter of positions behind per-key cursors.
    cursors = {name: starts[name][:-1].copy() for name in granularities}
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        batch = chunk_keys(lo, hi)
        transient = sum(a.nbytes for a in batch.values())
        for name in granularities:
            chunk_arr = batch[name]
            slot = np.searchsorted(keys[name], chunk_arr)
            order = np.argsort(chunk_arr, kind="stable")
            sorted_slot = slot[order]
            run_slot, run_start, run_count = np.unique(
                sorted_slot, return_index=True, return_counts=True)
            within = (np.arange(hi - lo, dtype=np.int64)
                      - np.repeat(run_start, run_count))
            dest = cursors[name][sorted_slot] + within
            tables[f"{name}_positions"][dest] = (
                lo + order.astype(np.int64))
            cursors[name][run_slot] += run_count
            transient += (slot.nbytes + order.nbytes + sorted_slot.nbytes
                          + within.nbytes + dest.nbytes)
        peak_transient = max(peak_transient, transient)

    # Pass 3: successors and ranks from the grouped positions table.
    for name in granularities:
        positions = tables[f"{name}_positions"]
        run_starts = starts[name]
        successors = tables[f"{name}_successors"]
        ranks = tables[f"{name}_ranks"]
        for lo in range(0, n, chunk):
            hi = min(n, lo + chunk)
            pos = np.asarray(positions[lo:hi], dtype=np.int64)
            grouped_idx = np.arange(lo, hi, dtype=np.int64)
            run_of = np.searchsorted(run_starts, grouped_idx,
                                     side="right") - 1
            nxt = np.empty(hi - lo, dtype=np.int64)
            if hi < n:
                nxt[:] = positions[lo + 1:hi + 1]
            elif hi - lo:
                nxt[:-1] = positions[lo + 1:hi]
                nxt[-1] = -1
            run_end = run_starts[run_of + 1]
            succ = np.where(grouped_idx + 1 < run_end, nxt, -1)
            rank = grouped_idx - run_starts[run_of]
            successors[pos] = succ
            ranks[pos] = rank
            peak_transient = max(
                peak_transient,
                pos.nbytes + grouped_idx.nbytes + run_of.nbytes
                + nxt.nbytes + run_end.nbytes + succ.nbytes + rank.nbytes)

    for table in tables.values():
        if isinstance(table, np.memmap):
            table.flush()
    stats = IndexBuildStats(
        n_accesses=n,
        chunk_accesses=chunk,
        n_chunks=max(1, -(-n // chunk)) if n else 0,
        peak_transient_bytes=int(peak_transient),
        key_state_bytes=int(sum(keys[g].nbytes + counts[g].nbytes
                                + starts[g].nbytes
                                for g in granularities)),
        table_bytes=int(sum(t.nbytes for t in tables.values())),
    )
    s = telemetry.session()
    if s is not None:
        s.add_time("index.build", time.perf_counter() - build_t0)
        s.count("index.build.chunks", stats.n_chunks)
        s.event("index.build", {
            "n_accesses": stats.n_accesses,
            "n_chunks": stats.n_chunks,
            "chunk_accesses": stats.chunk_accesses,
            "peak_transient_bytes": stats.peak_transient_bytes,
            "table_bytes": stats.table_bytes,
        })
    return tables, stats


class _GrowColumn:
    """Random-write growable int64 column with bounded-RAM option.

    The live builder's successor table needs *random* writes into
    already-appended rows (a key's previous occurrence is patched when
    its next access arrives), which rules out the append-only
    :class:`~repro.traceio.spill.ArraySpill`.  With a ``directory`` the
    column lives in a capacity-doubling memory-mapped file (RSS stays
    bounded by the touched pages); without one it degrades to a
    capacity-doubling heap array.
    """

    def __init__(self, directory=None, name="column", capacity=1 << 12):
        self._directory = directory
        self._path = (os.path.join(directory, name + ".bin")
                      if directory is not None else None)
        self._capacity = max(1, int(capacity))
        self.rows = 0
        self._data = self._allocate(self._capacity)

    def _allocate(self, capacity):
        if self._path is None:
            return np.empty(capacity, dtype=np.int64)
        with open(self._path, "ab") as handle:
            handle.truncate(capacity * 8)
        return np.memmap(self._path, mode="r+", dtype=np.int64,
                         shape=(capacity,))

    def _grow_to(self, rows):
        if rows <= self._capacity:
            return
        capacity = self._capacity
        while capacity < rows:
            capacity *= 2
        old = self._data
        data = self._allocate(capacity)
        if self._path is None:
            data[:self.rows] = old[:self.rows]
        # A remapped file already holds the previous rows.
        self._data = data
        self._capacity = capacity

    def append(self, values):
        values = np.asarray(values, dtype=np.int64)
        self._grow_to(self.rows + values.shape[0])
        self._data[self.rows:self.rows + values.shape[0]] = values
        self.rows += values.shape[0]

    def patch(self, idx, values):
        """Overwrite already-appended rows at ``idx`` with ``values``."""
        self._data[idx] = values

    def view(self, n):
        """Live (mutable-underneath) view of the first ``n`` rows —
        copy before keeping across further appends."""
        return self._data[:n]

    def close(self):
        self._data = None
        if self._path is not None:
            try:
                os.remove(self._path)
            except OSError:
                pass


class LiveIndexBuilder:
    """Incrementally maintained index tables over an append-only feed.

    Generalizes the chunked counting-sort build to an *unbounded* access
    stream: :meth:`append` folds each chunk into merged per-key state
    (sorted keys, occurrence counts, last-occurrence positions) plus
    live successor/rank columns, and :meth:`seal` materializes the full
    grouped table set for the prefix consumed so far — bit-identical to
    what :func:`build_index_tables` (or the in-RAM argsort) produces on
    that prefix.

    Incrementality invariants that make the seal cheap and exact:

    * *ranks* are prefix-independent (the rank of access ``p`` within
      its key's run counts only earlier accesses), so they are computed
      once at append time and copied at seal;
    * *successors* are appended provisionally (``-1``) and patched in
      place when the key's next access arrives — at a seal taken at the
      stream position every entry is either a real in-prefix successor
      or ``-1``, exactly the batch semantics;
    * the grouped *positions* table of epoch ``k`` is the epoch-``k-1``
      table with each run extended by the pending accesses, so sealing
      copies the previous epoch run-by-run into its new offsets and
      counting-sort scatters only the pending tail.

    Sealed epochs spill through the existing
    ``save_arrays``/``put_stream`` path when a store is given, so the
    builder's resident set stays O(chunk + unique keys) while the feed
    grows without bound.
    """

    _GRANULARITIES = ("lines", "pages")

    def __init__(self, store=None, spill_dir=None):
        self.store = store if store is not None and store.enabled else None
        self.n_accesses = 0
        self._scratch = None
        directory = None
        if self.store is not None or spill_dir is not None:
            parent = spill_dir if spill_dir is not None else self.store.root
            os.makedirs(parent, exist_ok=True)
            self._scratch = tempfile.mkdtemp(prefix="live-index-",
                                             dir=parent)
            directory = self._scratch
        self._keys = {}
        self._counts = {}
        self._prev_pos = {}
        self._succ = {}
        self._rank = {}
        self._pending = {}
        for name in self._GRANULARITIES:
            self._keys[name] = np.empty(0, dtype=np.int64)
            self._counts[name] = np.empty(0, dtype=np.int64)
            self._prev_pos[name] = np.empty(0, dtype=np.int64)
            self._succ[name] = _GrowColumn(directory, name + "_succ")
            self._rank[name] = _GrowColumn(directory, name + "_rank")
            self._pending[name] = []
        #: Per-granularity previous sealed epoch: (keys, starts, positions).
        self._sealed = {}
        self._sealed_watermark = 0

    def append(self, chunk):
        """Fold one feed chunk (a TraceChunk or a raw line array) into
        the live tables."""
        mem_line = getattr(chunk, "mem_line", chunk)
        lines = np.asarray(mem_line, dtype=np.int64)
        m = lines.shape[0]
        if m == 0:
            return
        telemetry.counter("live.index.chunks")
        n0 = self.n_accesses
        for name in self._GRANULARITIES:
            chunk_arr = (lines if name == "lines"
                         else lines >> _PAGE_OF_LINE_SHIFT)
            self._fold(name, chunk_arr, n0)
            self._pending[name].append(chunk_arr.copy())
        self.n_accesses = n0 + m

    def _fold(self, name, chunk_arr, n0):
        m = chunk_arr.shape[0]
        unique, chunk_counts = np.unique(chunk_arr, return_counts=True)
        keys = self._keys[name]
        # Merge new keys into the sorted state (counts/prev_pos realign).
        if keys.shape[0] == 0 or not np.all(np.isin(unique, keys)):
            merged = np.unique(np.concatenate((keys, unique)))
            if merged.shape[0] != keys.shape[0]:
                old_slot = np.searchsorted(merged, keys)
                counts = np.zeros(merged.shape[0], dtype=np.int64)
                counts[old_slot] = self._counts[name]
                prev_pos = np.full(merged.shape[0], -1, dtype=np.int64)
                prev_pos[old_slot] = self._prev_pos[name]
                self._keys[name] = keys = merged
                self._counts[name] = counts
                self._prev_pos[name] = prev_pos
        counts = self._counts[name]
        prev_pos = self._prev_pos[name]

        slot = np.searchsorted(keys, chunk_arr)
        order = np.argsort(chunk_arr, kind="stable")
        sorted_slot = slot[order]
        run_slot, run_start, run_count = np.unique(
            sorted_slot, return_index=True, return_counts=True)
        within = (np.arange(m, dtype=np.int64)
                  - np.repeat(run_start, run_count))

        # Ranks: prefix count before the chunk + within-chunk rank.
        rank_chunk = np.empty(m, dtype=np.int64)
        rank_chunk[order] = counts[sorted_slot] + within
        self._rank[name].append(rank_chunk)

        # Successors: in-chunk chains now, cross-chunk patched in place.
        pos_sorted = n0 + order.astype(np.int64)
        succ_sorted = np.empty(m, dtype=np.int64)
        if m:
            succ_sorted[:-1] = pos_sorted[1:]
            succ_sorted[-1] = -1
            succ_sorted[run_start + run_count - 1] = -1
        succ_chunk = np.empty(m, dtype=np.int64)
        succ_chunk[order] = succ_sorted
        self._succ[name].append(succ_chunk)
        first_pos = pos_sorted[run_start]
        prev = prev_pos[run_slot]
        has_prev = prev >= 0
        if np.any(has_prev):
            self._succ[name].patch(prev[has_prev], first_pos[has_prev])

        prev_pos[run_slot] = pos_sorted[run_start + run_count - 1]
        counts[run_slot] += run_count

    def seal(self, trace, key=None, label="live-index",
             chunk_accesses=None):
        """Materialize the index for the prefix consumed so far.

        ``trace`` is the prefix snapshot (``trace.n_accesses`` must equal
        the accesses appended); with a store and ``key`` the tables are
        published via ``save_arrays`` and served back memory-mapped,
        otherwise they stay heap-resident.  Returns a
        :class:`TraceIndex` bit-identical to a from-scratch build of the
        same prefix.
        """
        t0 = time.perf_counter()
        n = self.n_accesses
        if int(trace.n_accesses) != n:
            raise ValueError(
                f"prefix snapshot has {trace.n_accesses} accesses, "
                f"builder consumed {n}")
        chunk = max(1, int(chunk_accesses if chunk_accesses is not None
                           else default_chunk_accesses()))
        spill_dir = None
        if self.store is not None and key is not None:
            spill_dir = tempfile.mkdtemp(prefix="live-seal-",
                                         dir=self.store.root)

        def allocate(table_name, shape, dtype):
            if spill_dir is None or not shape[0]:
                return np.empty(shape, dtype=dtype)
            return np.lib.format.open_memmap(
                os.path.join(spill_dir, table_name + ".npy"), mode="w+",
                dtype=dtype, shape=shape)

        try:
            tables = {}
            for name in self._GRANULARITIES:
                self._seal_granularity(name, n, chunk, allocate, tables)
            index = self._publish(trace, tables, key, label)
        finally:
            if spill_dir is not None:
                shutil.rmtree(spill_dir, ignore_errors=True)
        self._sealed_watermark = n
        s = telemetry.session()
        if s is not None:
            s.add_time("live.index.seal", time.perf_counter() - t0)
            s.count("live.index.seals")
        return index

    def _seal_granularity(self, name, n, chunk, allocate, tables):
        keys_now = self._keys[name]
        counts_now = self._counts[name]
        n_keys = keys_now.shape[0]
        starts_now = np.empty(n_keys + 1, dtype=np.int64)
        starts_now[0] = 0
        np.cumsum(counts_now, out=starts_now[1:])

        key_table = allocate(f"{name}_keys", (n_keys,), np.int64)
        key_table[:] = keys_now
        start_table = allocate(f"{name}_starts", (n_keys + 1,), np.int64)
        start_table[:] = starts_now
        positions = allocate(f"{name}_positions", (n,), np.int64)

        base_counts = np.zeros(n_keys, dtype=np.int64)
        prev = self._sealed.get(name)
        if prev is not None:
            pkeys, pstarts, ppositions = prev
            pstarts = np.asarray(pstarts, dtype=np.int64)
            n_prev = int(pstarts[-1])
            slot = np.searchsorted(keys_now, np.asarray(pkeys))
            run_lengths = np.diff(pstarts)
            base_counts[slot] = run_lengths
            new_run_base = starts_now[slot]
            # Copy epoch k-1's runs into their (shifted) epoch-k offsets.
            for lo in range(0, n_prev, chunk):
                hi = min(n_prev, lo + chunk)
                idx = np.arange(lo, hi, dtype=np.int64)
                run_of = np.searchsorted(pstarts, idx, side="right") - 1
                dest = new_run_base[run_of] + (idx - pstarts[run_of])
                positions[dest] = np.asarray(ppositions[lo:hi],
                                             dtype=np.int64)
        n_prev = int(base_counts.sum())

        # Counting-sort scatter of the pending tail behind per-key
        # cursors seeded past the copied runs.
        cursors = starts_now[:-1] + base_counts
        pend_lo = 0
        for chunk_arr in self._pending[name]:
            for lo in range(0, chunk_arr.shape[0], chunk):
                hi = min(chunk_arr.shape[0], lo + chunk)
                window = chunk_arr[lo:hi]
                slot = np.searchsorted(keys_now, window)
                order = np.argsort(window, kind="stable")
                sorted_slot = slot[order]
                run_slot, run_start, run_count = np.unique(
                    sorted_slot, return_index=True, return_counts=True)
                within = (np.arange(hi - lo, dtype=np.int64)
                          - np.repeat(run_start, run_count))
                dest = cursors[sorted_slot] + within
                positions[dest] = (n_prev + pend_lo + lo
                                   + order.astype(np.int64))
                cursors[run_slot] += run_count
            pend_lo += chunk_arr.shape[0]
        if n_prev + pend_lo != n:
            raise AssertionError("pending buffer out of sync with feed")

        successors = allocate(f"{name}_successors", (n,), np.int64)
        ranks = allocate(f"{name}_ranks", (n,), np.int64)
        for lo in range(0, n, chunk):
            hi = min(n, lo + chunk)
            successors[lo:hi] = self._succ[name].view(n)[lo:hi]
            ranks[lo:hi] = self._rank[name].view(n)[lo:hi]

        tables[f"{name}_keys"] = key_table
        tables[f"{name}_starts"] = start_table
        tables[f"{name}_positions"] = positions
        tables[f"{name}_successors"] = successors
        tables[f"{name}_ranks"] = ranks

    def _publish(self, trace, tables, key, label):
        published = None
        if self.store is not None and key is not None:
            self.store.save_arrays(key, tables, label=label)
            published = self.store.load_mapped(key, label=label)
        if published is not None:
            tables = published
        else:
            # Heap fallback (no store/key, or a racing sweep): copy any
            # spill memmaps so the epoch survives the spill cleanup.
            tables = {name: (np.array(table) if isinstance(table, np.memmap)
                             else table)
                      for name, table in tables.items()}
        for name in self._GRANULARITIES:
            self._sealed[name] = (tables[f"{name}_keys"],
                                  tables[f"{name}_starts"],
                                  tables[f"{name}_positions"])
            self._pending[name] = []
        return TraceIndex.from_tables(trace, tables)

    def close(self):
        for name in self._GRANULARITIES:
            self._succ[name].close()
            self._rank[name].close()
        self._sealed = {}
        if self._scratch is not None:
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class TraceIndex:
    """Line- and page-granularity position indices for one trace."""

    #: Set by the chunked/spilled constructors (None for argsort builds).
    build_stats = None

    def __init__(self, trace):
        s = telemetry.session()
        t0 = time.perf_counter() if s is not None else 0.0
        self.trace = trace
        self.lines = _PositionIndex(trace.mem_line)
        self.pages = _PositionIndex(trace.mem_page)
        if s is not None:
            s.add_time("index.build.argsort", time.perf_counter() - t0)

    def tables(self):
        """Flat array mapping for the artifact store (npz-friendly)."""
        return {**self.lines.tables("lines"), **self.pages.tables("pages")}

    @classmethod
    def from_tables(cls, trace, tables):
        """Rebuild an index from persisted tables (no argsorts).

        ``successors``/``ranks`` entries are optional — legacy
        position-only artifacts still load, with those tables rebuilt
        lazily in RAM on first batched query.
        """
        index = cls.__new__(cls)
        index.trace = trace
        index.lines = _PositionIndex.from_tables(
            tables["lines_positions"], tables["lines_keys"],
            tables["lines_starts"], tables.get("lines_successors"),
            tables.get("lines_ranks"))
        index.pages = _PositionIndex.from_tables(
            tables["pages_positions"], tables["pages_keys"],
            tables["pages_starts"], tables.get("pages_successors"),
            tables.get("pages_ranks"))
        return index

    # -- spill / memory-mapped mode ---------------------------------------

    @classmethod
    def appendable(cls, store=None, spill_dir=None):
        """A :class:`LiveIndexBuilder`: ``append(chunk)`` folds feed
        chunks incrementally, ``seal(trace)`` materializes a
        :class:`TraceIndex` for the consumed prefix that is bit-identical
        to a from-scratch build."""
        return LiveIndexBuilder(store=store, spill_dir=spill_dir)

    @classmethod
    def open(cls, trace, store, key):
        """Open a spilled index as memory-mapped views, or None on miss.

        Queries against the returned index never require the tables in
        RAM: binary searches and gathers touch only the pages they hit.
        """
        tables = store.load_mapped(key, label="trace-index-spill")
        if tables is None:
            return None
        return cls.from_tables(trace, tables)

    @classmethod
    def build_chunked(cls, trace, chunk_accesses=None):
        """Chunked in-RAM build (bounded transients, heap-resident
        tables) — the store-less fallback of :meth:`build_spilled`."""
        tables, stats = build_index_tables(trace, chunk_accesses)
        index = cls.from_tables(trace, tables)
        index.build_stats = stats
        return index

    @classmethod
    def build_spilled(cls, trace, store, key, chunk_accesses=None):
        """Build (or reopen) a spilled, memory-mapped index.

        Tables are constructed chunk-by-chunk into spill files next to
        the store (same filesystem — ``/tmp`` may be RAM-backed), then
        streamed into an uncompressed-npz store blob and served back as
        read-only memory maps.  Peak construction RSS is O(chunk +
        unique keys), not O(accesses).  Without an enabled store this
        degrades to :meth:`build_chunked` (bounded transients, tables in
        RAM).
        """
        existing = cls.open(trace, store, key)
        if existing is not None:
            return existing
        if not store.enabled:
            return cls.build_chunked(trace, chunk_accesses)
        os.makedirs(store.root, exist_ok=True)
        spill_dir = tempfile.mkdtemp(prefix="index-spill-", dir=store.root)
        try:
            def allocate(name, shape, dtype):
                if not shape[0]:
                    return np.empty(shape, dtype=dtype)
                return np.lib.format.open_memmap(
                    os.path.join(spill_dir, name + ".npy"), mode="w+",
                    dtype=dtype, shape=shape)

            tables, stats = build_index_tables(trace, chunk_accesses,
                                               allocate)
            store.save_arrays(key, tables, label="trace-index-spill")
            del tables
        finally:
            shutil.rmtree(spill_dir, ignore_errors=True)
        index = cls.open(trace, store, key)
        if index is None:          # racing gc/clear swept the blob
            return cls.build_chunked(trace, chunk_accesses)
        index.build_stats = stats
        return index

    @property
    def mapped(self):
        """True when the position tables are memory-mapped views."""
        return any(isinstance(part._positions, np.memmap)
                   for part in (self.lines, self.pages)
                   if part is not None)

    def close(self):
        """Drop table references so memory-mapped views can unmap.

        The index is unusable afterwards; reopen via :meth:`open`.
        """
        self.lines = None
        self.pages = None

    def page_of_line(self, line):
        """Page number containing ``line``."""
        return int(line) >> (PAGE_SHIFT - CACHELINE_SHIFT)

    def pages_of_lines(self, lines):
        """Unique pages covering an array of lines."""
        lines = np.asarray(lines, dtype=np.int64)
        return np.unique(lines >> (PAGE_SHIFT - CACHELINE_SHIFT))

    def last_access_before(self, line, position):
        """Most recent access to ``line`` strictly before ``position`` (-1 if none)."""
        return self.lines.last_in(line, 0, position)

    def next_access_after(self, line, position):
        """First access to ``line`` strictly after ``position`` (-1 if none)."""
        return self.lines.first_in(line, position + 1, self.trace.n_accesses)

    def batch_await_reuse(self, positions, access_limit):
        """Vectorized RSW primitive over many sampled access positions.

        For each access position ``p`` (the watchpoint is armed on the
        line accessed *at* ``p``), returns ``(reuse, stops)`` matching
        per-sample :meth:`next_access_after` + page-window stop counts:
        ``reuse[i]`` is the line's next access position (-1 if none
        before ``access_limit``) and ``stops[i]`` the page stops taken
        while waiting (final true stop included).  Line successors give
        the reuse in O(1); page *ranks* turn the resolved stop count
        into a rank difference (both endpoints are accesses to the
        page), and dangling watchpoints need one batched count of page
        accesses before the limit.
        """
        positions = np.asarray(positions, dtype=np.int64)
        n = positions.shape[0]
        reuse = np.full(n, -1, dtype=np.int64)
        stops = np.zeros(n, dtype=np.int64)
        if n == 0:
            return reuse, stops
        succ = self.lines.successors()[positions]
        resolved = (succ >= 0) & (succ < access_limit)
        page_ranks = self.pages.ranks()
        reuse[resolved] = succ[resolved]
        stops[resolved] = (page_ranks[succ[resolved]]
                           - page_ranks[positions[resolved]])
        dangling = np.flatnonzero(~resolved)
        if dangling.size:
            # Derive the sampled pages from the line array directly: on a
            # streamed trace ``mem_page`` would materialize an
            # O(accesses) array just to read a handful of entries.
            pages = (np.asarray(self.trace.mem_line[positions[dangling]],
                                dtype=np.int64) >> _PAGE_OF_LINE_SHIFT)
            unique_pages, inverse = np.unique(pages, return_inverse=True)
            before_limit, _ = self.pages.batch_counts_and_last(
                unique_pages, 0, access_limit)
            stops[dangling] = (before_limit[inverse]
                               - page_ranks[positions[dangling]] - 1)
        return reuse, stops

    def page_stops_in(self, pages, lo, hi):
        """Total accesses landing in ``pages`` within window ``[lo, hi)``.

        This is exactly the number of watchpoint stops a run with those
        pages protected would take over the window.
        """
        pages = np.asarray(pages)
        if kernels.get_backend() != "scalar" and pages.size > 1:
            counts, _ = self.pages.batch_counts_and_last(pages, lo, hi)
            return int(counts.sum())
        return sum(self.pages.count_in(int(page), lo, hi)
                   for page in pages.tolist())

    def window_access_counts(self, lines, lo, hi):
        """Per-line access counts and last access position in a window.

        Batched equivalent of per-line ``count_in`` / ``last_in`` over
        ``[lo, hi)``; lines absent from the window carry a last position
        of ``-1``.
        """
        return self.lines.batch_counts_and_last(
            np.asarray(lines, dtype=np.int64), lo, hi)

    def multi_window_access_counts(self, lines, los, his):
        """Aligned-entry :meth:`window_access_counts` over many windows.

        Entry ``i`` asks for ``lines[i]`` within ``[los[i], his[i])``;
        one pass over the mapped line index serves every window.
        """
        return self.lines.multi_counts_and_last(
            np.asarray(lines, dtype=np.int64), los, his)

    def multi_page_stops(self, pages_per_window, los, his):
        """Per-window :meth:`page_stops_in` totals in one index pass.

        ``pages_per_window[i]`` is the protected page set of window
        ``[los[i], his[i])``; returns the aligned stop totals.  Values
        are identical to calling :meth:`page_stops_in` per window.
        """
        sizes = np.asarray([len(pages) for pages in pages_per_window],
                           dtype=np.int64)
        totals = np.zeros(sizes.shape[0], dtype=np.int64)
        if sizes.sum() == 0:
            return totals
        window_of = np.repeat(np.arange(sizes.shape[0], dtype=np.int64),
                              sizes)
        keys = np.concatenate([np.asarray(pages, dtype=np.int64)
                               for pages in pages_per_window if len(pages)])
        counts, _ = self.pages.multi_counts_and_last(
            keys, np.repeat(np.asarray(los, dtype=np.int64), sizes),
            np.repeat(np.asarray(his, dtype=np.int64), sizes))
        np.add.at(totals, window_of, counts)
        return totals
