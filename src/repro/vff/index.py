"""Per-line and per-page access-position indices over a trace.

A real DeLorean run discovers reuses by executing with watchpoints; the
trace-driven substitute answers the same questions from a sorted index:
*when was line L last accessed before access position P?* and *how many
accesses hit page G inside a window?* (the stop count a page-protection
watchpoint would have taken).  Building the index is two argsorts; every
query is a binary search.
"""

import numpy as np

from repro import kernels
from repro.util.units import CACHELINE_SHIFT, PAGE_SHIFT


class _PositionIndex:
    """Sorted access positions grouped by key (line or page)."""

    def __init__(self, keys):
        keys = np.asarray(keys)
        order = np.argsort(keys, kind="stable")
        self._positions = order.astype(np.int64)
        sorted_keys = keys[order]
        unique, starts = np.unique(sorted_keys, return_index=True)
        self._keys = unique
        self._starts = np.concatenate(
            (starts, [keys.shape[0]])).astype(np.int64)
        self._successors = None
        self._ranks = None

    @classmethod
    def from_tables(cls, positions, keys, starts):
        """Rebuild from persisted tables, skipping the argsort."""
        index = cls.__new__(cls)
        index._positions = np.ascontiguousarray(positions, dtype=np.int64)
        index._keys = np.ascontiguousarray(keys)
        index._starts = np.ascontiguousarray(starts, dtype=np.int64)
        index._successors = None
        index._ranks = None
        return index

    def tables(self, prefix):
        """The persistable position tables, namespaced by ``prefix``."""
        return {
            f"{prefix}_positions": self._positions,
            f"{prefix}_keys": self._keys,
            f"{prefix}_starts": self._starts,
        }

    def successors(self):
        """Next same-key position for *every* access position (-1 if last).

        The grouped table already stores each key's run contiguously in
        ascending position order, so the successor of a run element is
        its right neighbour; scattering through the (permutation)
        position table turns that into an O(1) lookup per access.  Built
        lazily, once, in a single vectorized pass.
        """
        if self._successors is None:
            n = self._positions.shape[0]
            succ_sorted = np.empty(n, dtype=np.int64)
            if n:
                succ_sorted[:-1] = self._positions[1:]
                succ_sorted[-1] = -1
                succ_sorted[self._starts[1:] - 1] = -1   # run boundaries
            successors = np.empty(n, dtype=np.int64)
            successors[self._positions] = succ_sorted
            self._successors = successors
        return self._successors

    def ranks(self):
        """Rank of every access position within its key's run.

        ``ranks()[p]`` is the number of same-key accesses strictly
        before position ``p``; the difference of two same-key ranks is
        therefore the access count between them — the O(1) stop-count
        primitive behind the batched watchpoint kernels.
        """
        if self._ranks is None:
            n = self._positions.shape[0]
            lengths = np.diff(self._starts)
            rank_sorted = (np.arange(n, dtype=np.int64)
                           - np.repeat(self._starts[:-1], lengths))
            ranks = np.empty(n, dtype=np.int64)
            ranks[self._positions] = rank_sorted
            self._ranks = ranks
        return self._ranks

    def positions(self, key):
        """Ascending access positions of ``key`` (empty if unseen)."""
        idx = int(np.searchsorted(self._keys, key))
        if idx >= self._keys.shape[0] or self._keys[idx] != key:
            return np.empty(0, dtype=np.int64)
        return self._positions[self._starts[idx]:self._starts[idx + 1]]

    def count_in(self, key, lo, hi):
        """Number of accesses to ``key`` with position in ``[lo, hi)``."""
        positions = self.positions(key)
        return int(np.searchsorted(positions, hi, side="left")
                   - np.searchsorted(positions, lo, side="left"))

    def last_in(self, key, lo, hi):
        """Largest position of ``key`` in ``[lo, hi)``, or -1."""
        positions = self.positions(key)
        idx = int(np.searchsorted(positions, hi, side="left")) - 1
        if idx < 0 or positions[idx] < lo:
            return -1
        return int(positions[idx])

    def first_in(self, key, lo, hi):
        """Smallest position of ``key`` in ``[lo, hi)``, or -1."""
        positions = self.positions(key)
        idx = int(np.searchsorted(positions, lo, side="left"))
        if idx >= positions.shape[0] or positions[idx] >= hi:
            return -1
        return int(positions[idx])

    def batch_counts_and_last(self, keys, lo, hi):
        """Window counts and last positions for many keys at once.

        Equivalent to per-key ``count_in`` / ``last_in`` over ``[lo,
        hi)`` but batched: every key's position run is gathered with
        one grouped-arange, masked against the window, and reduced.
        Gathering is window-independent (it touches every occurrence of
        every key), so when the runs dwarf the per-key binary-search
        cost the loop is used instead — results are identical either
        way.  Returns ``(counts, last)`` aligned with ``keys`` (``-1``
        marks a key unseen in the window).
        """
        keys = np.asarray(keys, dtype=np.int64)
        n_keys = keys.shape[0]
        counts = np.zeros(n_keys, dtype=np.int64)
        last = np.full(n_keys, -1, dtype=np.int64)
        if n_keys == 0 or hi <= lo or self._keys.shape[0] == 0:
            return counts, last
        slot = np.minimum(np.searchsorted(self._keys, keys),
                          self._keys.shape[0] - 1)
        present = self._keys[slot] == keys
        starts = np.where(present, self._starts[slot], 0)
        lengths = np.where(present, self._starts[slot + 1] - starts, 0)
        total = int(lengths.sum())
        if total == 0:
            return counts, last
        if total > 256 * n_keys:
            for k in np.flatnonzero(present).tolist():
                run = self._positions[starts[k]:starts[k] + lengths[k]]
                at_hi = int(np.searchsorted(run, hi, side="left"))
                at_lo = int(np.searchsorted(run, lo, side="left"))
                counts[k] = at_hi - at_lo
                if at_hi > at_lo:
                    last[k] = int(run[at_hi - 1])
            return counts, last
        key_of = np.repeat(np.arange(n_keys, dtype=np.int64), lengths)
        cum = np.cumsum(lengths) - lengths
        flat = (np.repeat(starts - cum, lengths)
                + np.arange(total, dtype=np.int64))
        positions = self._positions[flat]
        in_window = (positions >= lo) & (positions < hi)
        matched_key = key_of[in_window]
        matched_pos = positions[in_window]
        counts += np.bincount(matched_key, minlength=n_keys)
        np.maximum.at(last, matched_key, matched_pos)
        return counts, last


class TraceIndex:
    """Line- and page-granularity position indices for one trace."""

    def __init__(self, trace):
        self.trace = trace
        self.lines = _PositionIndex(trace.mem_line)
        self.pages = _PositionIndex(trace.mem_page)

    def tables(self):
        """Flat array mapping for the artifact store (npz-friendly)."""
        return {**self.lines.tables("lines"), **self.pages.tables("pages")}

    @classmethod
    def from_tables(cls, trace, tables):
        """Rebuild an index from persisted tables (no argsorts)."""
        index = cls.__new__(cls)
        index.trace = trace
        index.lines = _PositionIndex.from_tables(
            tables["lines_positions"], tables["lines_keys"],
            tables["lines_starts"])
        index.pages = _PositionIndex.from_tables(
            tables["pages_positions"], tables["pages_keys"],
            tables["pages_starts"])
        return index

    def page_of_line(self, line):
        """Page number containing ``line``."""
        return int(line) >> (PAGE_SHIFT - CACHELINE_SHIFT)

    def pages_of_lines(self, lines):
        """Unique pages covering an array of lines."""
        lines = np.asarray(lines, dtype=np.int64)
        return np.unique(lines >> (PAGE_SHIFT - CACHELINE_SHIFT))

    def last_access_before(self, line, position):
        """Most recent access to ``line`` strictly before ``position`` (-1 if none)."""
        return self.lines.last_in(line, 0, position)

    def next_access_after(self, line, position):
        """First access to ``line`` strictly after ``position`` (-1 if none)."""
        return self.lines.first_in(line, position + 1, self.trace.n_accesses)

    def batch_await_reuse(self, positions, access_limit):
        """Vectorized RSW primitive over many sampled access positions.

        For each access position ``p`` (the watchpoint is armed on the
        line accessed *at* ``p``), returns ``(reuse, stops)`` matching
        per-sample :meth:`next_access_after` + page-window stop counts:
        ``reuse[i]`` is the line's next access position (-1 if none
        before ``access_limit``) and ``stops[i]`` the page stops taken
        while waiting (final true stop included).  Line successors give
        the reuse in O(1); page *ranks* turn the resolved stop count
        into a rank difference (both endpoints are accesses to the
        page), and dangling watchpoints need one batched count of page
        accesses before the limit.
        """
        positions = np.asarray(positions, dtype=np.int64)
        n = positions.shape[0]
        reuse = np.full(n, -1, dtype=np.int64)
        stops = np.zeros(n, dtype=np.int64)
        if n == 0:
            return reuse, stops
        succ = self.lines.successors()[positions]
        resolved = (succ >= 0) & (succ < access_limit)
        page_ranks = self.pages.ranks()
        reuse[resolved] = succ[resolved]
        stops[resolved] = (page_ranks[succ[resolved]]
                           - page_ranks[positions[resolved]])
        dangling = np.flatnonzero(~resolved)
        if dangling.size:
            pages = self.trace.mem_page[positions[dangling]]
            unique_pages, inverse = np.unique(pages, return_inverse=True)
            before_limit, _ = self.pages.batch_counts_and_last(
                unique_pages, 0, access_limit)
            stops[dangling] = (before_limit[inverse]
                               - page_ranks[positions[dangling]] - 1)
        return reuse, stops

    def page_stops_in(self, pages, lo, hi):
        """Total accesses landing in ``pages`` within window ``[lo, hi)``.

        This is exactly the number of watchpoint stops a run with those
        pages protected would take over the window.
        """
        pages = np.asarray(pages)
        if kernels.get_backend() == "vector" and pages.size > 1:
            counts, _ = self.pages.batch_counts_and_last(pages, lo, hi)
            return int(counts.sum())
        return sum(self.pages.count_in(int(page), lo, hi)
                   for page in pages.tolist())

    def window_access_counts(self, lines, lo, hi):
        """Per-line access counts and last access position in a window.

        Batched equivalent of per-line ``count_in`` / ``last_in`` over
        ``[lo, hi)``; lines absent from the window carry a last position
        of ``-1``.
        """
        return self.lines.batch_counts_and_last(
            np.asarray(lines, dtype=np.int64), lo, hi)
