"""Virtualized execution substrate.

The paper runs on gem5 + KVM: hardware virtualization fast-forwards
between detailed regions at near-native speed, and OS page-protection
watchpoints implement virtualized directed profiling.  We have neither
KVM nor the SPEC binaries, so this package substitutes a *trace-driven
virtual machine* with an explicit host cost model:

* :class:`~repro.vff.costmodel.HostCostParameters` /
  :class:`~repro.vff.costmodel.CostMeter` — charge modeled host time per
  instruction (by execution mode) and per event (watchpoint stops, state
  transfers), with paper-scale projection for gap-proportional quantities
  (DESIGN.md §6).
* :class:`~repro.vff.index.TraceIndex` — per-line and per-page access
  position indices; the oracle that tells us which watchpoint stops a
  real run would have taken.
* :class:`~repro.vff.watchpoint.WatchpointEngine` — page-granularity
  watchpoint semantics with true/false-positive accounting.
* :class:`~repro.vff.machine.VirtualMachine` — the mode-switching facade
  used by sampling strategies and DeLorean passes.
"""

from repro.vff.costmodel import (
    CostMeter,
    HostCostParameters,
    TimeLedger,
)
from repro.vff.index import TraceIndex
from repro.vff.watchpoint import WatchpointEngine, WatchpointProfile
from repro.vff.machine import VirtualMachine

__all__ = [
    "CostMeter",
    "HostCostParameters",
    "TimeLedger",
    "TraceIndex",
    "WatchpointEngine",
    "WatchpointProfile",
    "VirtualMachine",
]
