"""Page-protection watchpoint engine.

Models the mechanism of Section 2.3: a watchpoint on a cacheline protects
the whole enclosing 4 KiB page; *any* access to the page stops execution
(a KVM exit).  A stop on the watched line itself is a true positive;
stops from other lines in the page are false positives.  False positives
are pure overhead and — for workloads whose long-reuse lines share pages
with hot lines (povray) — the dominant cost of directed profiling.

The engine answers, for a window of execution with a set of lines
watched: which watched lines were accessed (and when, last), and how many
stops (true + false) the run took.  Everything is derived from the
:class:`~repro.vff.index.TraceIndex` oracle rather than by stepping the
window access-by-access.
"""

import time
from dataclasses import dataclass, field

import numpy as np

from repro import kernels, telemetry


@dataclass
class WatchpointProfile:
    """Result of profiling one window with a set of watched lines."""

    #: line -> access position of its *last* access inside the window.
    last_access: dict = field(default_factory=dict)
    #: Watched lines never accessed inside the window.
    unresolved: tuple = ()
    #: Stops on watched lines (every access to them stops execution).
    true_stops: int = 0
    #: Stops caused by page sharing only.
    false_stops: int = 0

    @property
    def total_stops(self):
        return self.true_stops + self.false_stops


class WatchpointEngine:
    """Watchpoint semantics over a trace index."""

    def __init__(self, index):
        self.index = index

    def profile_window(self, watched_lines, access_lo, access_hi):
        """Keep watchpoints on ``watched_lines`` armed over a window.

        The window is ``[access_lo, access_hi)`` in memory-access
        coordinates.  Watchpoints stay armed for the whole window (the
        profiler needs each line's *last* access — Section 3.3, "the
        watchpoints need to be on during the entire warm-up interval").
        """
        watched = np.unique(np.asarray(list(watched_lines), dtype=np.int64))
        profile = WatchpointProfile()
        if watched.size == 0 or access_hi <= access_lo:
            profile.unresolved = tuple(int(l) for l in watched)
            return profile

        s = telemetry.session()
        t0 = time.perf_counter() if s is not None else 0.0
        if kernels.get_backend() != "scalar":
            # One vectorized pass over the window resolves every watched
            # line at once (identical counts/positions to the per-line
            # binary searches below).
            counts, last = self.index.window_access_counts(
                watched, access_lo, access_hi)
            if s is not None:
                s.add_time("kernel.watchpoint_profile",
                           time.perf_counter() - t0)
            true_stops = int(counts.sum())
            resolved = counts > 0
            profile.last_access = dict(
                zip(watched[resolved].tolist(), last[resolved].tolist()))
            unresolved = watched[~resolved].tolist()
        else:
            true_stops = 0
            unresolved = []
            for line in watched.tolist():
                count = self.index.lines.count_in(line, access_lo, access_hi)
                if count:
                    true_stops += count
                    profile.last_access[line] = self.index.lines.last_in(
                        line, access_lo, access_hi)
                else:
                    unresolved.append(line)
            if s is not None:
                s.add_time("kernel.watchpoint_profile.scalar",
                           time.perf_counter() - t0)

        pages = self.index.pages_of_lines(watched)
        page_stops = self.index.page_stops_in(pages, access_lo, access_hi)
        profile.true_stops = true_stops
        profile.false_stops = max(0, page_stops - true_stops)
        profile.unresolved = tuple(unresolved)
        return profile

    def profile_windows(self, requests):
        """Batched :meth:`profile_window` over many windows at once.

        ``requests`` is a sequence of ``(watched_lines, access_lo,
        access_hi)`` triples; returns the aligned
        :class:`WatchpointProfile` list with values identical to the
        per-window calls.  On a non-scalar backend the line and page
        queries for *every* window collapse into one multi-window index
        pass each — on a cold spilled index this touches the mapped
        position tables once instead of once per region.  The scalar
        backend keeps the reference per-window loop.
        """
        if kernels.get_backend() == "scalar" or len(requests) <= 1:
            return [self.profile_window(watched, lo, hi)
                    for watched, lo, hi in requests]
        profiles = [None] * len(requests)
        live = []
        for slot, (watched, lo, hi) in enumerate(requests):
            watched = np.unique(
                np.asarray(list(watched), dtype=np.int64))
            if watched.size == 0 or hi <= lo:
                profile = WatchpointProfile()
                profile.unresolved = tuple(int(l) for l in watched)
                profiles[slot] = profile
            else:
                live.append((slot, watched, lo, hi))
        if not live:
            return profiles

        s = telemetry.session()
        t0 = time.perf_counter() if s is not None else 0.0
        keys = np.concatenate([watched for _, watched, _, _ in live])
        sizes = np.asarray([watched.shape[0]
                            for _, watched, _, _ in live], dtype=np.int64)
        los = np.repeat(np.asarray([lo for _, _, lo, _ in live],
                                   dtype=np.int64), sizes)
        his = np.repeat(np.asarray([hi for _, _, _, hi in live],
                                   dtype=np.int64), sizes)
        counts, last = self.index.multi_window_access_counts(
            keys, los, his)
        if s is not None:
            s.add_time("kernel.watchpoint_profile",
                       time.perf_counter() - t0)
        page_stops = self.index.multi_page_stops(
            [self.index.pages_of_lines(watched)
             for _, watched, _, _ in live],
            [lo for _, _, lo, _ in live],
            [hi for _, _, _, hi in live])
        offset = 0
        for j, (slot, watched, lo, hi) in enumerate(live):
            n = watched.shape[0]
            window_counts = counts[offset:offset + n]
            window_last = last[offset:offset + n]
            offset += n
            profile = WatchpointProfile()
            resolved = window_counts > 0
            profile.last_access = dict(zip(
                watched[resolved].tolist(),
                window_last[resolved].tolist()))
            profile.true_stops = int(window_counts.sum())
            profile.false_stops = max(
                0, int(page_stops[j]) - profile.true_stops)
            profile.unresolved = tuple(watched[~resolved].tolist())
            profiles[slot] = profile
        return profiles

    def await_next_reuse(self, line, access_position, access_limit):
        """Arm a watchpoint on ``line`` right after ``access_position`` and
        run until its next access or ``access_limit``.

        Returns ``(reuse_position, stops)`` where ``reuse_position`` is -1
        if the line is not reused before the limit.  ``stops`` counts all
        page stops taken while waiting (the final true stop included).
        This is the RSW/vicinity sampling primitive: the watchpoint is
        removed at the first reuse (Section 2.3).
        """
        next_pos = self.index.next_access_after(line, access_position)
        if next_pos < 0 or next_pos >= access_limit:
            window_end = access_limit
            reuse = -1
        else:
            window_end = next_pos + 1
            reuse = next_pos
        page = self.index.page_of_line(line)
        stops = self.index.pages.count_in(
            page, access_position + 1, window_end)
        return reuse, stops

    def await_next_reuse_many(self, access_positions, access_limit):
        """Batched :meth:`await_next_reuse` for watchpoints armed at
        many sampled access positions (the line is the one accessed at
        each position).  Returns aligned ``(reuse, stops)`` arrays with
        identical values to the per-sample loop.
        """
        return self.index.batch_await_reuse(access_positions, access_limit)
