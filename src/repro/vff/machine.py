"""Virtual machine facade: mode-switched execution over a trace.

A :class:`VirtualMachine` couples one workload trace with a cost meter
and the watchpoint engine, exposing the execution modes the paper's
passes switch between:

* ``fast_forward`` — KVM-style virtualized fast-forwarding (no
  microarchitectural visibility, near-native speed);
* ``functional`` — gem5 'atomic' functional simulation (sees every
  access, no timing);
* ``functional_warm`` — functional simulation that also updates a cache
  hierarchy (SMARTS's warming mode);
* ``detailed`` — cycle-accurate detailed simulation (the slow mode);
* ``directed_profile`` / ``await_reuse`` — virtualized directed
  profiling with page-protection watchpoints.

Each pass of a time-traveling run owns its own ``VirtualMachine`` (the
paper runs each pass as a separate gem5/KVM process); the shared
:class:`~repro.vff.index.TraceIndex` is passed in so the oracle is built
once per workload.
"""

from repro.vff.costmodel import CostMeter
from repro.vff.index import TraceIndex
from repro.vff.watchpoint import WatchpointEngine


class VirtualMachine:
    """One simulated gem5+KVM process executing a fixed trace."""

    def __init__(self, trace, meter=None, index=None):
        self.trace = trace
        self.meter = meter if meter is not None else CostMeter()
        self.index = index if index is not None else TraceIndex(trace)
        self.watchpoints = WatchpointEngine(self.index)

    def access_window(self, instr_lo, instr_hi):
        """The :class:`~repro.core.context.AccessWindow` of an
        instruction window — how passes slice trace data (views stay
        zero-copy over memory-mapped traces).  Deferred import: the
        context module sits above this one in the layer stack."""
        from repro.core.context import AccessWindow

        return AccessWindow.from_trace(self.trace, instr_lo, instr_hi)

    def region_mispredicts(self, spec):
        """Branch mispredictions inside a region's detailed window
        (context-shaped, so passes without an
        :class:`~repro.core.context.ExecutionContext` can still feed
        :meth:`~repro.sampling.base.StrategyBase.region_timing`)."""
        from repro.core.context import trace_region_mispredicts

        return trace_region_mispredicts(self.trace, spec)

    # -- instruction-window modes -----------------------------------------

    def fast_forward(self, instr_lo, instr_hi, scaled=True):
        """Advance ``[instr_lo, instr_hi)`` under virtualization."""
        n = max(0, instr_hi - instr_lo)
        return self.meter.fast_forward(n, scaled=scaled)

    def functional(self, instr_lo, instr_hi, scaled=False):
        """Advance under atomic functional simulation; returns the
        (access_lo, access_hi) window the mode observed."""
        n = max(0, instr_hi - instr_lo)
        self.meter.atomic(n, scaled=scaled)
        return self.trace.access_range(instr_lo, instr_hi)

    def functional_warm(self, hierarchy, instr_lo, instr_hi, scaled=True):
        """Functional simulation that warms ``hierarchy`` (SMARTS mode).

        Returns ``(l1_hits, llc_hits, mem_misses)`` over the window.
        """
        n = max(0, instr_hi - instr_lo)
        self.meter.functional_warm(n, scaled=scaled)
        lo, hi = self.trace.access_range(instr_lo, instr_hi)
        return hierarchy.warm(self.trace.mem_line[lo:hi])

    def detailed(self, instr_lo, instr_hi):
        """Charge detailed simulation for a region (never scale-projected:
        regions keep their paper size)."""
        n = max(0, instr_hi - instr_lo)
        return self.meter.detailed(n, scaled=False)

    # -- directed profiling -------------------------------------------------

    def directed_profile(self, watched_lines, instr_lo, instr_hi,
                         charge_stops=True, scaled=True):
        """Run ``[instr_lo, instr_hi)`` with watchpoints armed.

        Execution proceeds under virtualization between stops; each stop
        (true or false positive) costs a KVM exit.  Returns the
        :class:`~repro.vff.watchpoint.WatchpointProfile`.
        """
        access_lo, access_hi = self.trace.access_range(instr_lo, instr_hi)
        profile = self.watchpoints.profile_window(
            watched_lines, access_lo, access_hi)
        self.fast_forward(instr_lo, instr_hi, scaled=scaled)
        self.meter.watchpoint_setups(len(set(watched_lines)), scaled=False)
        if charge_stops:
            self.meter.watchpoint_stops(profile.total_stops, scaled=scaled)
        return profile

    def await_reuse(self, line, access_position, access_limit,
                    charge_stops=True, scaled=True):
        """RSW/vicinity primitive: watch ``line`` until its next access."""
        reuse, stops = self.watchpoints.await_next_reuse(
            line, access_position, access_limit)
        self.meter.watchpoint_setups(1, scaled=scaled)
        if charge_stops:
            self.meter.watchpoint_stops(stops, scaled=scaled)
        return reuse, stops

    # -- region boundaries ----------------------------------------------------

    def switch_state(self):
        """KVM <-> gem5 full-system state transfer at a region boundary."""
        return self.meter.state_transfer()

    def sync(self):
        """OS-pipe synchronization with a neighbouring pass."""
        return self.meter.pipe_sync()
