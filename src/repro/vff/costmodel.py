"""Host cost model: modeled wall-clock for every execution mode.

The paper's speed results (Figures 5 and 11, the 1.3 / 21.9 / 126 MIPS
headline) are wall-clock measurements on a dual-socket Xeon E5520.  Our
substitute makes the underlying quantities first-class: every pass
charges modeled host-seconds per instruction executed in a given mode and
per discrete event (watchpoint stop, watchpoint arm, KVM<->gem5 state
transfer).  Simulation speed in MIPS is then derived, auditable, and —
because our traces are scaled down from the paper's 10 B-instruction runs
— *projected back to paper scale*: quantities proportional to the
inter-region gap (fast-forwarded instructions, watchpoint stops inside
explorer windows) are multiplied by the scale factor, while fixed-size
quantities (the 10 k-instruction detailed region, the 30 k detailed
warming, per-key-line watchpoint arming) are not.

Per-instruction rates are calibrated once, globally, against the paper's
reported averages; per-benchmark variation then *emerges* from workload
structure (sample counts, page-sharing false positives, explorer
engagement).  Calibration targets:

* SMARTS ~= 1.3 MIPS (functional warming dominates),
* CoolSim ~= 21.9 MIPS,
* DeLorean ~= 126 MIPS,
* native execution 2260 MIPS (2.26 GHz host, IPC ~= 1).
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class HostCostParameters:
    """Per-mode rates (MIPS) and per-event costs (seconds)."""

    #: Native execution speed of the workload on the host.
    native_mips: float = 2260.0
    #: KVM virtualized fast-forwarding (near-native; paper Section 2.1).
    vff_mips: float = 1400.0
    #: Functional simulation *with* cache warming (SMARTS's gap mode).
    funcwarm_mips: float = 1.32
    #: gem5 atomic CPU functional simulation (Explorer-1's profiling mode).
    atomic_mips: float = 1.5
    #: gem5 out-of-order detailed simulation (detailed regions).
    detailed_mips: float = 0.15
    #: One watchpoint stop: trap, classify, resume (KVM exit + mprotect).
    watchpoint_stop_seconds: float = 35e-6
    #: Arming/disarming one watchpoint (mprotect + bookkeeping).
    watchpoint_setup_seconds: float = 8e-6
    #: Full-system state transfer between KVM and gem5 at region bounds.
    state_transfer_seconds: float = 0.040
    #: OS-pipe synchronization between time-traveling passes.
    pipe_sync_seconds: float = 2e-4


class TimeLedger:
    """Accumulates modeled host-seconds by category."""

    def __init__(self):
        self.seconds_by_category = {}

    def add(self, category, seconds):
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.seconds_by_category[category] = (
            self.seconds_by_category.get(category, 0.0) + seconds)
        return seconds

    @property
    def total_seconds(self):
        return sum(self.seconds_by_category.values())

    def merge(self, other):
        for category, seconds in other.seconds_by_category.items():
            self.add(category, seconds)
        return self

    def as_dict(self):
        return dict(self.seconds_by_category)

    def __repr__(self):
        return f"TimeLedger(total={self.total_seconds:.3f}s)"


@dataclass
class CostMeter:
    """Charges modeled time into a ledger, applying paper-scale projection.

    ``scale`` is paper-gap / model-gap (e.g. 1 B / 100 k = 10 000): every
    ``scaled=True`` charge is multiplied by it.  With ``scale=1`` the
    meter charges model quantities as-is.
    """

    params: HostCostParameters = field(default_factory=HostCostParameters)
    scale: float = 1.0
    ledger: TimeLedger = field(default_factory=TimeLedger)

    def _instr_charge(self, category, n_instructions, mips, scaled):
        factor = self.scale if scaled else 1.0
        seconds = (n_instructions * factor) / (mips * 1e6)
        return self.ledger.add(category, seconds)

    # -- per-instruction modes ---------------------------------------------

    def native(self, n_instructions, scaled=True):
        return self._instr_charge(
            "native", n_instructions, self.params.native_mips, scaled)

    def fast_forward(self, n_instructions, scaled=True):
        return self._instr_charge(
            "vff", n_instructions, self.params.vff_mips, scaled)

    def functional_warm(self, n_instructions, scaled=True):
        return self._instr_charge(
            "funcwarm", n_instructions, self.params.funcwarm_mips, scaled)

    def atomic(self, n_instructions, scaled=True):
        return self._instr_charge(
            "atomic", n_instructions, self.params.atomic_mips, scaled)

    def detailed(self, n_instructions, scaled=False):
        return self._instr_charge(
            "detailed", n_instructions, self.params.detailed_mips, scaled)

    # -- per-event charges ---------------------------------------------------

    def watchpoint_stops(self, count, scaled=True):
        factor = self.scale if scaled else 1.0
        seconds = count * factor * self.params.watchpoint_stop_seconds
        return self.ledger.add("watchpoint_stop", seconds)

    def watchpoint_setups(self, count, scaled=False):
        factor = self.scale if scaled else 1.0
        seconds = count * factor * self.params.watchpoint_setup_seconds
        return self.ledger.add("watchpoint_setup", seconds)

    def state_transfer(self, count=1):
        seconds = count * self.params.state_transfer_seconds
        return self.ledger.add("state_transfer", seconds)

    def pipe_sync(self, count=1):
        seconds = count * self.params.pipe_sync_seconds
        return self.ledger.add("pipe_sync", seconds)

    # -- derived -------------------------------------------------------------

    def mips(self, paper_equivalent_instructions):
        """Simulation speed over this meter's charged time."""
        total = self.ledger.total_seconds
        if total <= 0:
            return float("inf")
        return paper_equivalent_instructions / total / 1e6

    def fork(self):
        """A new meter with the same parameters and scale, empty ledger."""
        return CostMeter(params=self.params, scale=self.scale)
