"""Gate metric policy: directions, floors, and the regression rule.

One place decides what "regressed" means for every gate metric the
bench schema carries, so ``benchmarks/bench.py --check``, the trend
report's drift flags and ``python -m repro report gate`` agree:

* **Direction.**  Wall seconds, peak RSS, bailout rates, pool
  retry/requeue counts and fault firings are *lower is better*; store
  hit rates (``store.hit_rate`` and ``store.hit_rate.<label>``) are
  *higher is better*.  Direction is derived from the metric name.
* **Floors.**  A change only counts when it clears both a relative
  ratio (15%) and an absolute floor sized to the metric's unit —
  0.25 s wall, 8 MB RSS, 0.02 for rates (which live in [0, 1]) and
  2 events for behavioral counts — so scheduler jitter and one stray
  retry never trip the gate, while a doubled bailout rate or a halved
  warm-start hit rate does, even when wall time is flat.
"""

#: A gate metric regresses when it worsens past BOTH bounds: >15%
#: relative and more than the unit's absolute floor.
REGRESSION_RATIO = 1.15
FLOOR_SECONDS = 0.25
FLOOR_MB = 8.0
FLOOR_RATE = 0.02
FLOOR_COUNT = 2.0


def metric_floor(name):
    """The absolute change floor for one gate metric, by unit."""
    if name.endswith("_mb"):
        return FLOOR_MB
    if name.rsplit(".", 1)[-1].endswith("rate") or "hit_rate" in name:
        return FLOOR_RATE
    if name.startswith(("pool.", "fault")):
        return FLOOR_COUNT
    return FLOOR_SECONDS


def higher_is_better(name):
    """True for metrics where growth is an improvement (hit rates)."""
    return "hit_rate" in name


def classify(name, current, reference):
    """``-1`` regression, ``+1`` improvement past the floors, else 0."""
    floor = metric_floor(name)
    if higher_is_better(name):
        current, reference = reference, current   # mirror the rule
    delta = current - reference
    if delta > floor and current > reference * REGRESSION_RATIO:
        return -1
    if -delta > floor and current * REGRESSION_RATIO < reference:
        return 1
    return 0


def check_gate(suite, gate, base):
    """Compare one suite's flat gate dict against its baseline slot.

    Returns ``(regressions, notes)`` — regressions are formatted gate
    failures, notes are informational (new/removed metrics and
    improvements worth folding into the baseline).
    """
    regressions, notes = [], []
    for name, current in sorted(gate.items()):
        reference = base.get(name)
        if reference is None:
            notes.append(f"{suite}.{name}: new metric "
                         f"({current:g}), not in baseline")
            continue
        verdict = classify(name, current, reference)
        if verdict < 0:
            if reference:
                moved = 100 * (current - reference) / reference
                direction = (f"{moved:+.0f}%")
            else:
                direction = "from zero"
            bound = 100 * (REGRESSION_RATIO - 1)
            sign = "-" if higher_is_better(name) else "+"
            regressions.append(
                f"{suite}.{name}: {current:g} vs baseline "
                f"{reference:g} ({direction}, "
                f"threshold {sign}{bound:.0f}%)")
        elif verdict > 0:
            notes.append(f"{suite}.{name}: improved {reference:g} "
                         f"-> {current:g}")
    for name in sorted(set(base) - set(gate)):
        notes.append(f"{suite}.{name}: in baseline but not measured")
    return regressions, notes


def monotonic_drift(values, name, window=3):
    """True when the last ``window`` points worsen monotonically and
    the total slide clears the metric's absolute floor — the trend
    report's early-warning flag for creep that individually stays
    under the per-run gate."""
    tail = [v for v in values if v is not None][-(window + 1):]
    if len(tail) < window + 1:
        return False
    worsening = ((lambda a, b: b < a) if higher_is_better(name)
                 else (lambda a, b: b > a))
    if not all(worsening(a, b) for a, b in zip(tail, tail[1:])):
        return False
    return abs(tail[-1] - tail[0]) > metric_floor(name)
