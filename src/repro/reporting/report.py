"""Per-run paper-figure report: one HTML/CSV/JSON artifact per run.

:func:`build_sections` runs registry figures against a shared
:class:`~repro.experiments.runner.SuiteRunner` (warm-starting from the
artifact store like every other exhibit path) and captures, per
figure, the table rows, the rendered inline-SVG charts, the
paper-comparison notes and the collection wall time.
:class:`FigureReport` turns those sections into the three artifacts::

    report.html    self-contained page (inline CSS + SVG, no assets)
    figures.csv    long-form rows: figure,row,column,value
    figures.json   {figure: {title, headers, rows, notes, seconds}}

The HTML is a single standalone document — attach it to a CI run or
open it from disk; nothing is fetched.
"""

import csv
import io
import json
import os
import time

from repro import telemetry
from repro.reporting import figures as registry
from repro.reporting.html import escape, html_page, html_table

SCHEMA_VERSION = 1


def build_sections(runner, fig_ids=None):
    """Collect each requested figure into a plain section dict."""
    sections = []
    for fig_id in (fig_ids or registry.default_figures()):
        spec = registry.REGISTRY[fig_id]
        start = time.perf_counter()
        with telemetry.span(f"phase.report.{fig_id}"):
            out = spec.collect(runner)
        headers, rows = spec.table(out) if spec.table else ((), ())
        sections.append({
            "figure": fig_id,
            "title": spec.title,
            "headers": list(headers),
            "rows": [list(row) for row in rows],
            "charts": spec.charts(out) if spec.charts else [],
            "notes": registry.paper_notes(out),
            "text": out.get("text", ""),
            "seconds": round(time.perf_counter() - start, 3),
        })
    return sections


class FigureReport:
    """Rendered views over collected figure sections."""

    def __init__(self, sections, profile="full", benchmarks=(),
                 config=None):
        self.sections = list(sections)
        self.profile = profile
        self.benchmarks = tuple(benchmarks)
        self.config = dict(config or {})

    @classmethod
    def build(cls, runner, fig_ids=None, profile="full"):
        sections = build_sections(runner, fig_ids)
        config = {
            "n_instructions": runner.config.n_instructions,
            "n_regions": runner.config.n_regions,
            "seed": runner.config.seed,
        }
        return cls(sections, profile=profile, benchmarks=runner.names,
                   config=config)

    # -- renderers ---------------------------------------------------------

    def as_dict(self):
        return {
            "schema_version": SCHEMA_VERSION,
            "profile": self.profile,
            "benchmarks": list(self.benchmarks),
            "config": self.config,
            "figures": {
                section["figure"]: {
                    key: section[key]
                    for key in ("title", "headers", "rows", "notes",
                                "seconds")
                }
                for section in self.sections
            },
        }

    def to_json(self, indent=2):
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_csv(self):
        """Long-form CSV: one (figure, row, column, value) per line."""
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(["figure", "row", "column", "value"])
        for section in self.sections:
            headers = section["headers"]
            for r, row in enumerate(section["rows"]):
                for column, value in zip(headers, row):
                    writer.writerow([section["figure"], r, column,
                                     value])
        return out.getvalue()

    def render_html(self):
        parts = []
        if self.sections:
            toc = " · ".join(
                f'<a href="#{escape(s["figure"])}">'
                f'{escape(s["figure"])}</a>'
                for s in self.sections)
            parts.append(f'<p class="meta">{toc}</p>')
        else:
            parts.append("<p class=\"note\">no figures collected"
                         "</p>")
        for section in self.sections:
            parts.append(f'<h2 id="{escape(section["figure"])}">'
                         f'{escape(section["title"])}</h2>')
            for chart in section["charts"]:
                parts.append(f"<figure>{chart}</figure>")
            if section["rows"]:
                parts.append(html_table(section["headers"],
                                        section["rows"]))
            elif section["text"]:
                parts.append(f"<pre>{escape(section['text'])}</pre>")
            for note in section["notes"]:
                parts.append(f'<p class="note">{escape(note)}</p>')
            parts.append(f'<p class="meta">collected in '
                         f'{section["seconds"]:.2f}s</p>')
        names = ", ".join(self.benchmarks)
        subtitle = (f"profile {self.profile}; "
                    f"{len(self.sections)} figure(s); "
                    f"benchmarks: {names or 'n/a'}")
        return html_page("DeLorean paper-figure run report",
                         "\n".join(parts), subtitle=subtitle)

    def write(self, out_dir):
        """Write ``report.html`` + ``figures.csv`` + ``figures.json``;
        returns the three paths."""
        os.makedirs(out_dir, exist_ok=True)
        paths = {}
        for name, text in (("report.html", self.render_html()),
                           ("figures.csv", self.to_csv()),
                           ("figures.json", self.to_json() + "\n")):
            path = os.path.join(out_dir, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            paths[name] = path
        return paths
