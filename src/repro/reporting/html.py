"""Shared HTML rendering primitives for the report surfaces.

Every HTML artifact the repo emits — the per-run paper-figure report,
the cross-commit trend report, the telemetry run report — goes through
:func:`html_page` / :func:`html_table`, so they share one stylesheet,
one escaping discipline and one self-containment guarantee: the
returned document is a single standalone page (inline CSS, inline SVG,
no external assets), safe to attach to a CI run or mail around.

Colors are declared once as CSS custom properties (light and dark
mode from the same validated palette); charts reference them by role
(``--series-1`` ...), never by raw hex.
"""

import html as _html
import time

#: Fixed categorical slot order (validated adjacent-pair palette;
#: light-mode / dark-mode steps of the same hues).  Series are assigned
#: in this order and never cycled; charts cap their series counts well
#: below the eight slots.
SERIES_SLOTS = 8

PAGE_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --surface-2: #f0efec;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e3e2de;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #eda100;
  --series-5: #e87ba4;
  --series-6: #008300;
  --series-7: #4a3aa7;
  --series-8: #e34948;
  --bad: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --surface-2: #383835;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #343431;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #c98500;
    --series-5: #d55181;
    --series-6: #008300;
    --series-7: #9085e9;
    --series-8: #e66767;
    --bad: #e66767;
  }
}
body {
  font: 14px/1.45 system-ui, sans-serif;
  margin: 2em auto;
  max-width: 72em;
  padding: 0 1em;
  background: var(--surface-1);
  color: var(--text-primary);
}
h1 { font-size: 1.5em; }
h2 { font-size: 1.2em; margin-top: 2em; }
p.meta, p.note { color: var(--text-secondary); }
table { border-collapse: collapse; margin: 1em 0 2em; }
td, th { border: 1px solid var(--grid); padding: 2px 10px;
         text-align: left; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
th { background: var(--surface-2); }
tr.flagged td { color: var(--bad); }
figure { margin: 1em 0; overflow-x: auto; }
figcaption { color: var(--text-secondary); font-size: 0.92em; }
svg text { fill: var(--text-primary); }
svg .axis-label, svg .tick-label, svg .legend-label {
  fill: var(--text-secondary);
}
"""


def escape(value):
    """HTML-escape ``value`` (anything; rendered via ``str``)."""
    return _html.escape(str(value), quote=True)


def format_cell(value, float_format="{:.4g}"):
    if isinstance(value, bool) or value is None:
        return "-" if value is None else str(value)
    if isinstance(value, float):
        if value != value:                    # NaN
            return "-"
        return float_format.format(value)
    return str(value)


def html_table(headers, rows, float_format="{:.4g}", flagged=()):
    """An escaped ``<table>``; numbers right-aligned, rows in
    ``flagged`` (by index) highlighted."""
    head = "".join(f"<th>{escape(h)}</th>" for h in headers)
    body = []
    for i, row in enumerate(rows):
        cells = []
        for value in row:
            text = format_cell(value, float_format)
            klass = (" class=\"num\""
                     if isinstance(value, (int, float))
                     and not isinstance(value, bool) else "")
            cells.append(f"<td{klass}>{escape(text)}</td>")
        klass = " class=\"flagged\"" if i in flagged else ""
        body.append(f"<tr{klass}>{''.join(cells)}</tr>")
    return (f"<table>\n<tr>{head}</tr>\n" + "\n".join(body)
            + "\n</table>")


def html_page(title, body, subtitle=None, generated=None):
    """A complete standalone HTML document around pre-rendered body
    markup (the body is trusted; titles and subtitles are escaped)."""
    if generated is None:
        generated = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
    sub = (f"<p class=\"meta\">{escape(subtitle)}</p>\n"
           if subtitle else "")
    return f"""<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>{escape(title)}</title>
<style>{PAGE_CSS}</style>
</head>
<body>
<h1>{escape(title)}</h1>
{sub}<p class="meta">rendered {escape(generated)}</p>
{body}
</body>
</html>
"""
