"""Run reporting: paper-figure reports, perf trends, drift gates.

The reporting layer turns the reproduction into a self-documenting
measurement tool:

* :mod:`repro.reporting.figures` — the declarative paper-figure
  registry (collector -> table -> inline-SVG chart spec per figure).
* :mod:`repro.reporting.report` — the per-run artifact set
  (``report.html`` / ``figures.csv`` / ``figures.json``).
* :mod:`repro.reporting.trends` — cross-commit gate-metric trend
  lines over the committed ``BENCH_*.json`` history.
* :mod:`repro.reporting.gates` — the shared gate policy (directions,
  floors, regression rule, monotonic-drift flag) that
  ``benchmarks/bench.py --check`` and the trend report both apply.
* :mod:`repro.reporting.html` / :mod:`repro.reporting.charts` — the
  shared standalone-HTML and inline-SVG primitives (also used by the
  telemetry run report).

CLI: ``python -m repro report figures|trends|gate``.
"""

from repro.reporting.html import html_page, html_table  # noqa: F401
from repro.reporting.charts import (  # noqa: F401
    svg_bar_chart, svg_line_chart)
