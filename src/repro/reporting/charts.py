"""Inline-SVG chart primitives for the self-contained HTML reports.

Pure string builders — no matplotlib, no external assets, no script.
Each function returns one ``<svg>`` element that references the page's
palette roles (``var(--series-N)``, ``var(--grid)``, ...) declared by
:mod:`repro.reporting.html`, so the charts restyle with the page in
light and dark mode.  Marks follow the house chart spec: thin bars
with rounded data ends anchored to the zero baseline, 2px lines with
>=8px point markers, a 2px surface gap between adjacent fills,
recessive grid, a legend whenever there is more than one series, and a
native ``<title>`` hover on every mark.

Series colors are assigned by slot in declaration order and never
cycled; callers keep series counts small (the paper figures need at
most the first few slots).
"""

import math

from repro.reporting.html import SERIES_SLOTS, escape

MARGIN_LEFT = 64
MARGIN_RIGHT = 16
MARGIN_TOP = 28
MARGIN_BOTTOM = 44
LEGEND_HEIGHT = 20
BAR_GAP = 2            # surface gap between adjacent fills


def _series_color(index):
    return f"var(--series-{(index % SERIES_SLOTS) + 1})"


def _fmt(value, value_format="{:.3g}"):
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return value_format.format(value)


def _ticks(lo, hi, n=4):
    """A few round tick values covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = 10.0 ** math.floor(math.log10(span / max(n, 1)))
    for mult in (1, 2, 2.5, 5, 10):
        if span / (step * mult) <= n:
            step *= mult
            break
    first = math.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-9 * span:
        ticks.append(round(value, 10))
        value += step
    return ticks or [lo, hi]


def _finite(values):
    return [v for v in values
            if v is not None and not (isinstance(v, float)
                                      and (math.isnan(v)
                                           or math.isinf(v)))]


def _y_scale(lo, hi, height):
    span = hi - lo if hi > lo else 1.0

    def to_y(value):
        frac = (value - lo) / span
        return MARGIN_TOP + (1.0 - frac) * height

    return to_y


def _frame(width, height, plot_h, to_y, ticks, y_label, title,
           value_format):
    parts = []
    if title:
        parts.append(
            f'<text x="{MARGIN_LEFT}" y="16" font-weight="600">'
            f'{escape(title)}</text>')
    x0, x1 = MARGIN_LEFT, width - MARGIN_RIGHT
    for tick in ticks:
        y = to_y(tick)
        parts.append(f'<line x1="{x0}" y1="{y:.1f}" x2="{x1}" '
                     f'y2="{y:.1f}" stroke="var(--grid)" '
                     'stroke-width="1"/>')
        parts.append(f'<text class="tick-label" x="{x0 - 6}" '
                     f'y="{y + 4:.1f}" text-anchor="end">'
                     f'{escape(_fmt(tick, value_format))}</text>')
    if y_label:
        parts.append(f'<text class="axis-label" x="{MARGIN_LEFT}" '
                     f'y="{MARGIN_TOP + plot_h + 34}">'
                     f'{escape(y_label)}</text>')
    return parts


def _legend(series_names, width, y):
    if len(series_names) < 2:
        return []
    parts = []
    x = MARGIN_LEFT
    for index, name in enumerate(series_names):
        color = _series_color(index)
        parts.append(f'<rect x="{x}" y="{y - 9}" width="10" '
                     f'height="10" rx="2" fill="{color}"/>')
        parts.append(f'<text class="legend-label" x="{x + 14}" '
                     f'y="{y}">{escape(name)}</text>')
        x += 14 + 7 * len(str(name)) + 18
    return parts


def _svg(width, height, parts):
    body = "\n".join(parts)
    return (f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}" '
            'role="img" style="font: 11px system-ui, sans-serif;">\n'
            f"{body}\n</svg>")


def _rounded_bar(x, y_top, bar_w, y_base, color, hover):
    """A bar anchored at the baseline with a rounded data end."""
    h = y_base - y_top
    r = min(3.0, bar_w / 2.0, max(h, 0.0))
    if h <= 0:
        return ""
    path = (f"M{x:.1f},{y_base:.1f} "
            f"V{y_top + r:.1f} Q{x:.1f},{y_top:.1f} {x + r:.1f},"
            f"{y_top:.1f} H{x + bar_w - r:.1f} "
            f"Q{x + bar_w:.1f},{y_top:.1f} {x + bar_w:.1f},"
            f"{y_top + r:.1f} V{y_base:.1f} Z")
    return (f'<path d="{path}" fill="{color}">'
            f"<title>{escape(hover)}</title></path>")


def svg_bar_chart(categories, series, title=None, y_label="",
                  value_format="{:.3g}", height=200):
    """Grouped bars: ``series`` is ``{name: [value per category]}``."""
    names = list(series)
    values = _finite(v for vs in series.values() for v in vs)
    if not values:
        return "<svg width=\"0\" height=\"0\"></svg>"
    lo, hi = min(0.0, min(values)), max(0.0, max(values))
    ticks = _ticks(lo, hi)
    hi = max(hi, ticks[-1])

    bar_w = max(8, 26 - 4 * len(names))
    group_w = len(names) * (bar_w + BAR_GAP) + 12
    width = MARGIN_LEFT + len(categories) * group_w + MARGIN_RIGHT
    plot_h = height
    total_h = MARGIN_TOP + plot_h + MARGIN_BOTTOM + LEGEND_HEIGHT
    to_y = _y_scale(lo, hi, plot_h)
    y_base = to_y(0.0)

    parts = _frame(width, total_h, plot_h, to_y, ticks, y_label, title,
                   value_format)
    for c, category in enumerate(categories):
        gx = MARGIN_LEFT + c * group_w + 6
        for s, name in enumerate(names):
            value = series[name][c]
            if value is None or (isinstance(value, float)
                                 and not math.isfinite(value)):
                continue
            x = gx + s * (bar_w + BAR_GAP)
            hover = (f"{category} — {name}: "
                     f"{_fmt(value, value_format)}")
            parts.append(_rounded_bar(x, to_y(value), bar_w, y_base,
                                      _series_color(s), hover))
        label_x = gx + (len(names) * (bar_w + BAR_GAP)) / 2
        parts.append(
            f'<text class="tick-label" text-anchor="end" '
            f'transform="translate({label_x:.1f},'
            f'{MARGIN_TOP + plot_h + 12}) rotate(-35)">'
            f'{escape(category)}</text>')
    parts.append(f'<line x1="{MARGIN_LEFT}" y1="{y_base:.1f}" '
                 f'x2="{width - MARGIN_RIGHT}" y2="{y_base:.1f}" '
                 'stroke="var(--text-secondary)" stroke-width="1"/>')
    parts.extend(_legend(names, width, total_h - 6))
    return _svg(width, total_h, parts)


def svg_line_chart(x_labels, series, title=None, y_label="",
                   value_format="{:.3g}", height=200, baseline=None,
                   logy=False):
    """Lines with point markers: ``series`` is ``{name: [values]}``.

    ``baseline=(value, label)`` draws an annotated dashed reference
    line (e.g. the committed gate baseline for a trend chart).
    """
    names = list(series)
    values = _finite(v for vs in series.values() for v in vs)
    if baseline is not None:
        values.append(baseline[0])
    if not values:
        return "<svg width=\"0\" height=\"0\"></svg>"
    transform = (lambda v: math.log10(max(v, 1e-12))) if logy \
        else (lambda v: v)
    lo, hi = min(map(transform, values)), max(map(transform, values))
    pad = 0.08 * (hi - lo or abs(hi) or 1.0)
    lo, hi = lo - pad, hi + pad
    ticks = _ticks(lo, hi)

    n = max(len(labels_vs) for labels_vs in series.values())
    n = max(n, len(x_labels), 2)
    width = max(480, MARGIN_LEFT + 40 * (n - 1) + MARGIN_RIGHT + 80)
    plot_h = height
    total_h = MARGIN_TOP + plot_h + MARGIN_BOTTOM + LEGEND_HEIGHT
    to_y = _y_scale(lo, hi, plot_h)
    span_x = width - MARGIN_LEFT - MARGIN_RIGHT - 70

    def to_x(i):
        return MARGIN_LEFT + i * span_x / max(n - 1, 1)

    shown = (lambda v: _fmt(v, value_format))
    parts = _frame(width, total_h, plot_h, to_y,
                   [] if logy else ticks, y_label, title, value_format)
    if logy:
        for tick in ticks:
            y = to_y(tick)
            parts.append(f'<line x1="{MARGIN_LEFT}" y1="{y:.1f}" '
                         f'x2="{width - MARGIN_RIGHT}" y2="{y:.1f}" '
                         'stroke="var(--grid)" stroke-width="1"/>')
            parts.append(f'<text class="tick-label" '
                         f'x="{MARGIN_LEFT - 6}" y="{y + 4:.1f}" '
                         f'text-anchor="end">'
                         f'{escape(_fmt(10 ** tick, value_format))}'
                         '</text>')
    if baseline is not None:
        y = to_y(transform(baseline[0]))
        parts.append(f'<line x1="{MARGIN_LEFT}" y1="{y:.1f}" '
                     f'x2="{width - MARGIN_RIGHT}" y2="{y:.1f}" '
                     'stroke="var(--text-secondary)" stroke-width="1" '
                     'stroke-dasharray="5,4"/>')
        parts.append(f'<text class="tick-label" '
                     f'x="{width - MARGIN_RIGHT}" y="{y - 4:.1f}" '
                     f'text-anchor="end">{escape(baseline[1])}</text>')
    for s, name in enumerate(names):
        color = _series_color(s)
        points = [(to_x(i), to_y(transform(v)), v, i)
                  for i, v in enumerate(series[name])
                  if v is not None and not (isinstance(v, float)
                                            and not math.isfinite(v))]
        if not points:
            continue
        poly = " ".join(f"{x:.1f},{y:.1f}" for x, y, _, _ in points)
        parts.append(f'<polyline points="{poly}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        for x, y, v, i in points:
            label = (x_labels[i] if i < len(x_labels) else i)
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
                f'fill="{color}" stroke="var(--surface-1)" '
                f'stroke-width="2"><title>'
                f"{escape(f'{label} — {name}: {shown(v)}')}"
                "</title></circle>")
        # selective direct label at the last point: text ink carries
        # the name, the adjacent colored line carries identity
        x, y, _, _ = points[-1]
        parts.append(f'<text class="legend-label" x="{x + 8:.1f}" '
                     f'y="{y + 4:.1f}">{escape(name)}</text>')
    step = max(1, (n + 7) // 8)
    for i in range(0, n, step):
        if i < len(x_labels):
            parts.append(
                f'<text class="tick-label" text-anchor="middle" '
                f'x="{to_x(i):.1f}" y="{MARGIN_TOP + plot_h + 16}">'
                f'{escape(x_labels[i])}</text>')
    parts.extend(_legend(names, width, total_h - 6))
    return _svg(width, total_h, parts)
