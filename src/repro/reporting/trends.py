"""Cross-commit gate-metric trends from the committed bench history.

The schema-v2 ``BENCH_*.json`` records carry their own ``history`` —
every prior run's flat gate dict, stamped and profiled.  This module
turns that history (plus the file's current run) into real trend
reporting: per-suite, per-metric series across commits, the committed
``benchmarks/BASELINE.json`` value annotated as a dashed reference,
and a **monotonic-drift flag** (via
:func:`repro.reporting.gates.monotonic_drift`) that catches slow creep
— three consecutive worsening runs past the metric's floor — before
any single run trips the 15% regression gate.

Renderers: text table, JSON, and a standalone HTML page with one
inline-SVG trend line per gate metric.
"""

import glob
import json
import os

from repro.reporting import gates
from repro.reporting.charts import svg_line_chart
from repro.reporting.html import escape, html_page, html_table

BASELINE_RELPATH = os.path.join("benchmarks", "BASELINE.json")


def load_suite_entries(path):
    """(suite, [history entry ... , current entry]) from one record."""
    try:
        doc = json.loads(open(path, "rb").read())
    except (OSError, ValueError):
        return None, []
    if not isinstance(doc, dict) or "gate" not in doc:
        return None, []
    entries = [entry for entry in doc.get("history") or []
               if isinstance(entry, dict) and entry.get("gate")]
    entries.append({"generated_utc": doc.get("generated_utc"),
                    "profile": doc.get("profile"),
                    "gate": doc["gate"]})
    return doc.get("suite") or os.path.basename(path), entries


def _stamp_label(stamp):
    if not stamp:
        return "v1"
    # 2026-08-08T15:31:40Z -> 08-08 15:31
    return stamp[5:16].replace("T", " ")


class TrendReport:
    """Gate-metric trend lines over every committed bench record."""

    def __init__(self, root):
        self.root = str(root)
        self.suites = {}
        for path in sorted(glob.glob(os.path.join(self.root,
                                                  "BENCH_*.json"))):
            suite, entries = load_suite_entries(path)
            if suite and entries:
                self.suites[suite] = entries
        try:
            self.baseline = json.loads(open(
                os.path.join(self.root, BASELINE_RELPATH),
                "rb").read())
        except (OSError, ValueError):
            self.baseline = {}

    def profiles(self):
        return sorted({entry.get("profile") or "full"
                       for entries in self.suites.values()
                       for entry in entries})

    def baseline_value(self, profile, suite, metric):
        return (self.baseline.get("profiles", {}).get(profile, {})
                .get(suite, {}).get(metric))

    def series(self, suite, profile):
        """``{metric: {stamps: [...], values: [...]}}`` for one
        suite's runs of one profile, oldest first."""
        out = {}
        for entry in self.suites.get(suite, ()):
            if (entry.get("profile") or "full") != profile:
                continue
            stamp = _stamp_label(entry.get("generated_utc"))
            for metric, value in entry["gate"].items():
                cell = out.setdefault(metric,
                                      {"stamps": [], "values": []})
                cell["stamps"].append(stamp)
                cell["values"].append(value)
        return out

    def as_dict(self, profile=None):
        profiles = [profile] if profile else self.profiles()
        doc = {"root": self.root, "profiles": {}}
        for prof in profiles:
            slot = doc["profiles"][prof] = {}
            for suite in sorted(self.suites):
                series = self.series(suite, prof)
                if not series:
                    continue
                slot[suite] = {
                    metric: {
                        "stamps": cell["stamps"],
                        "values": cell["values"],
                        "baseline": self.baseline_value(prof, suite,
                                                        metric),
                        "monotonic_drift": gates.monotonic_drift(
                            cell["values"], metric),
                    }
                    for metric, cell in sorted(series.items())
                }
        return doc

    def drifting(self, profile):
        """``[(suite, metric), ...]`` flagged for monotonic drift."""
        flagged = []
        for suite in sorted(self.suites):
            for metric, cell in sorted(self.series(suite,
                                                   profile).items()):
                if gates.monotonic_drift(cell["values"], metric):
                    flagged.append((suite, metric))
        return flagged

    # -- renderers ---------------------------------------------------------

    def _rows(self, suite, profile):
        rows, flagged = [], []
        for metric, cell in sorted(self.series(suite, profile).items()):
            values = [v for v in cell["values"] if v is not None]
            if not values:
                continue
            first, last = values[0], values[-1]
            change = (100.0 * (last - first) / first) if first else None
            drift = gates.monotonic_drift(cell["values"], metric)
            if drift:
                flagged.append(len(rows))
            rows.append([
                metric, len(values), first, last,
                (f"{change:+.0f}%" if change is not None else "-"),
                self.baseline_value(profile, suite, metric),
                "DRIFT" if drift else "",
            ])
        return rows, flagged

    def render_text(self, profile):
        lines = [f"gate-metric trends ({profile} profile, "
                 f"{len(self.suites)} suite(s))"]
        for suite in sorted(self.suites):
            rows, flagged = self._rows(suite, profile)
            if not rows:
                continue
            lines.append(f"\n{suite}:")
            for i, row in enumerate(rows):
                metric, n, first, last, change, base, drift = row
                base_text = f"{base:g}" if base is not None else "-"
                marker = "  <-- monotonic drift" if i in flagged else ""
                lines.append(
                    f"  {metric:<44s} {n:>3d} runs  "
                    f"{first:>10.4g} -> {last:<10.4g} {change:>6s}  "
                    f"baseline {base_text}{marker}")
        drifting = self.drifting(profile)
        lines.append("")
        if drifting:
            lines.append(f"{len(drifting)} metric(s) drifting "
                         "monotonically: "
                         + ", ".join(f"{s}.{m}" for s, m in drifting))
        else:
            lines.append("no monotonic drift flagged")
        return "\n".join(lines) + "\n"

    def render_html(self, profile):
        parts = []
        headers = ["metric", "runs", "first", "last", "change",
                   "baseline", "flag"]
        for suite in sorted(self.suites):
            series = self.series(suite, profile)
            if not series:
                continue
            parts.append(f"<h2 id=\"{escape(suite)}\">{escape(suite)}"
                         "</h2>")
            rows, flagged = self._rows(suite, profile)
            parts.append(html_table(headers, rows, flagged=flagged))
            for metric, cell in sorted(series.items()):
                base = self.baseline_value(profile, suite, metric)
                baseline = ((base, f"baseline {base:g}")
                            if base is not None else None)
                drift = gates.monotonic_drift(cell["values"], metric)
                title = f"{suite}.{metric}" + \
                    (" — MONOTONIC DRIFT" if drift else "")
                parts.append("<figure>" + svg_line_chart(
                    cell["stamps"], {metric: cell["values"]},
                    title=title, baseline=baseline,
                    y_label=_unit(metric)) + "</figure>")
        if not parts:
            parts.append("<p class=\"note\">no committed bench "
                         "history for this profile</p>")
        drifting = self.drifting(profile)
        subtitle = (f"profile {profile}; "
                    + (f"{len(drifting)} metric(s) drifting: "
                       + ", ".join(f"{s}.{m}" for s, m in drifting)
                       if drifting else "no monotonic drift flagged"))
        return html_page("Perf-gate trend report", "\n".join(parts),
                         subtitle=subtitle)


def _unit(metric):
    if metric.endswith("_mb"):
        return "MB"
    if metric.rsplit(".", 1)[-1].endswith("rate") \
            or "hit_rate" in metric:
        return "rate"
    if metric.startswith(("pool.", "fault")):
        return "events"
    return "seconds"
