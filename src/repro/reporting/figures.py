"""The paper-figure registry: one declarative entry per exhibit.

Each :class:`FigureSpec` names one figure of the paper's evaluation
and declares how to produce it as report material: the **collector**
(the existing harness in :mod:`repro.experiments.figures`, run against
a shared memoized :class:`~repro.experiments.runner.SuiteRunner`), the
**table** extraction (headers + rows for CSV/JSON/HTML) and the
**chart builders** (inline-SVG specs from :mod:`repro.reporting.charts`).
The registry is what ``python -m repro report figures`` iterates; the
``bench_fig*`` pytest harnesses keep asserting paper shape on the same
collector outputs.

Figures that need extra sweeps beyond the shared matrix + one DSE run
per paper benchmark (the 512 MB matrix, the vicinity-density sweep,
the prefetcher reruns) are registered with ``default=False`` — they
run only when asked for (``--figures fig10,... | all``).
"""

from dataclasses import dataclass, field

from repro.experiments import figures as harness
from repro.reporting.charts import svg_bar_chart, svg_line_chart


@dataclass(frozen=True)
class FigureSpec:
    """Declaration of one paper figure for the run report."""

    fig_id: str
    title: str
    collect: callable                      # SuiteRunner -> out dict
    table: callable = None                 # out -> (headers, rows)
    charts: callable = None                # out -> [svg string, ...]
    default: bool = True                   # in the default report set
    tags: tuple = field(default_factory=tuple)


def paper_notes(out):
    """The paper-comparison lines the harness appends to its text."""
    return [line.strip() for line in out.get("text", "").splitlines()
            if "paper:" in line or line.strip().startswith(("avg ",
                                                            "marginal"))]


def _table_from_out(out):
    rows = list(out.get("rows", ()))
    if "average" in out:
        rows = rows + [out["average"]]
    return out.get("headers", ()), rows


def _col(rows, index):
    return [row[index] for row in rows]


def _chart_fig5(out):
    names = _col(out["rows"], 0)
    return [svg_bar_chart(
        names,
        {"CoolSim": _col(out["rows"], 2),
         "DeLorean": _col(out["rows"], 3)},
        title="Simulation speedup over SMARTS",
        y_label="speedup (x, SMARTS = 1)")]


def _chart_fig6(out):
    names = _col(out["rows"], 0)
    return [svg_line_chart(
        names,
        {"CoolSim": _col(out["rows"], 1),
         "DeLorean": _col(out["rows"], 2)},
        title="Collected reuse distances (log scale)",
        y_label="reuse distances / region set", logy=True,
        value_format="{:,.0f}")]


def _chart_fig7(out):
    names = _col(out["rows"], 0)
    return [svg_bar_chart(
        names, {"Explorer-1": _col(out["rows"], 1)},
        title="Key reuse distances resolved by Explorer-1",
        y_label="% of key reuse distances",
        value_format="{:.1f}")]


def _chart_fig8(out):
    names = _col(out["rows"], 0)
    return [svg_bar_chart(
        names, {"Explorers": _col(out["rows"], 1)},
        title="Average Explorers engaged per region",
        y_label="Explorers", value_format="{:.2f}")]


def _chart_cpi_error(out):
    names = _col(out["rows"], 0)
    return [svg_bar_chart(
        names,
        {"CoolSim": _col(out["rows"], 4),
         "DeLorean": _col(out["rows"], 5)},
        title="CPI error vs the SMARTS reference",
        y_label="CPI error %", value_format="{:.1f}")]


def _chart_fig11(out):
    labels = _col(out["rows"], 0)
    return [
        svg_bar_chart(labels, {"MIPS": _col(out["rows"], 1)},
                      title="Simulation speed vs vicinity density",
                      y_label="avg MIPS"),
        svg_bar_chart(labels, {"CPI error": _col(out["rows"], 2)},
                      title="Accuracy vs vicinity density",
                      y_label="avg CPI error %",
                      value_format="{:.2f}"),
    ]


def _chart_fig12(out):
    ranks = [str(row[0]) for row in out["rows"]]
    return [svg_line_chart(
        ranks,
        {"w/o prefetch": _col(out["rows"], 1),
         "w/ prefetch": _col(out["rows"], 2)},
        title="Sorted per-benchmark CPI error, 8 MB LLC",
        y_label="CPI error %", value_format="{:.2f}")]


def _sweep_table(out, metric):
    headers = ("benchmark", "LLC MB", f"SMARTS {metric}",
               f"DeLorean {metric}")
    rows = []
    for name, series in out["data"].items():
        for i, size in enumerate(series["sizes_mb"]):
            rows.append([name, size, series["smarts"][i],
                         series["delorean"][i]])
    return headers, rows


def _sweep_charts(out, metric):
    charts = []
    for name, series in out["data"].items():
        charts.append(svg_line_chart(
            [str(s) for s in series["sizes_mb"]],
            {"SMARTS": series["smarts"],
             "DeLorean": series["delorean"]},
            title=f"{name}: {metric} vs LLC size (MB)",
            y_label=metric, value_format="{:.3g}"))
    return charts


REGISTRY = {
    spec.fig_id: spec for spec in (
        FigureSpec(
            "fig5", "Figure 5: normalized simulation speed",
            harness.figure5, _table_from_out, _chart_fig5),
        FigureSpec(
            "fig6", "Figure 6: collected reuse distances",
            harness.figure6, _table_from_out, _chart_fig6),
        FigureSpec(
            "fig7", "Figure 7: key reuses by collecting Explorer",
            harness.figure7, _table_from_out, _chart_fig7),
        FigureSpec(
            "fig8", "Figure 8: average Explorers engaged",
            harness.figure8, _table_from_out, _chart_fig8),
        FigureSpec(
            "fig9", "Figure 9: CPI accuracy, 8 MB LLC",
            harness.figure9, _table_from_out, _chart_cpi_error),
        FigureSpec(
            "fig10", "Figure 10: CPI accuracy, 512 MB LLC",
            harness.figure10, _table_from_out, _chart_cpi_error,
            default=False),
        FigureSpec(
            "fig11", "Figure 11: vicinity-density trade-off",
            harness.figure11, _table_from_out, _chart_fig11,
            default=False),
        FigureSpec(
            "fig12", "Figure 12: CPI error with LLC prefetching",
            harness.figure12, _table_from_out, _chart_fig12,
            default=False),
        FigureSpec(
            "fig13", "Figure 13: working-set curves (MPKI)",
            harness.figure13,
            lambda out: _sweep_table(out, "MPKI"),
            lambda out: _sweep_charts(out, "MPKI")),
        FigureSpec(
            "fig14", "Figure 14: DSE from one shared warm-up (CPI)",
            harness.figure14,
            lambda out: _sweep_table(out, "CPI"),
            lambda out: _sweep_charts(out, "CPI")),
        FigureSpec(
            "headline", "Headline statistics (Sections 6.1/6.4)",
            harness.headline, _table_from_out),
        FigureSpec(
            "lukewarm", "Lukewarm-cache and key-line statistics",
            harness.lukewarm_stats, _table_from_out,
            lambda out: [svg_bar_chart(
                _col(out["rows"], 0),
                {"lukewarm": _col(out["rows"], 1),
                 "lukewarm+MSHR": _col(out["rows"], 2)},
                title="Lukewarm hit rates",
                y_label="hit %", value_format="{:.1f}")]),
    )
}


def default_figures():
    """Figure ids in the default per-run report, registry order."""
    return [fig_id for fig_id, spec in REGISTRY.items() if spec.default]


def resolve_figures(selection):
    """Parse a ``--figures`` selection into registry ids."""
    if not selection or selection == "default":
        return default_figures()
    if selection == "all":
        return list(REGISTRY)
    chosen = []
    for fig_id in (part.strip() for part in selection.split(",")):
        if not fig_id:
            continue
        if fig_id not in REGISTRY:
            raise KeyError(
                f"unknown figure {fig_id!r}; known: "
                + ", ".join(REGISTRY))
        chosen.append(fig_id)
    return chosen
