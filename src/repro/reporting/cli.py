"""``python -m repro report`` — figure, trend and gate reporting.

Three actions close the observability loop:

* ``figures`` regenerates the paper-figure suite (through the shared
  memoized :class:`SuiteRunner`, warm-starting from the artifact
  store) and writes one self-contained per-run artifact set:
  ``report.html`` (inline SVG charts + tables), ``figures.csv`` and
  ``figures.json``.
* ``trends`` renders per-suite gate-metric trend lines across the
  committed ``BENCH_*.json`` history — wall, RSS and the derived
  behavioral metrics — annotating the committed baseline and flagging
  monotonic drift.
* ``gate`` replays the regression check of the committed bench records
  against ``benchmarks/BASELINE.json`` (the same policy
  ``benchmarks/bench.py --check`` enforces in CI) without re-running
  any suite.
"""

import argparse
import json
import os
import sys


def build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Paper-figure run reports, cross-commit trend "
                    "lines and the committed-record regression gate.")
    parser.add_argument("action", choices=("figures", "trends", "gate"),
                        help="figures: per-run HTML/CSV/JSON report; "
                             "trends: gate-metric history lines; "
                             "gate: check committed records against "
                             "the baseline")
    parser.add_argument("--quick", action="store_true",
                        help="figures: six-benchmark sweep (same "
                             "profile the CI perf gate renders)")
    parser.add_argument("--benchmarks", default=None,
                        help="figures: comma-separated benchmark "
                             "subset")
    parser.add_argument("--instructions", type=int, default=None,
                        help="figures: trace length per benchmark")
    parser.add_argument("--regions", type=int, default=None,
                        help="figures: detailed regions per benchmark")
    parser.add_argument("--seed", type=int, default=None,
                        help="figures: top-level seed")
    parser.add_argument("--figures", default="default", dest="fig_ids",
                        metavar="LIST",
                        help="figures: comma-separated figure ids, "
                             "'default' (matrix + DSE figures) or "
                             "'all' (adds the extra-sweep figures)")
    parser.add_argument("--out-dir", default=None,
                        help="figures: artifact directory "
                             "(default results/report)")
    parser.add_argument("--profile", default="full",
                        choices=("full", "quick"),
                        help="trends: which profile's history to "
                             "render (default full)")
    parser.add_argument("--root", default=".",
                        help="trends/gate: repo root holding the "
                             "committed BENCH_*.json records")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--json", action="store_true",
                       help="machine-readable output on stdout")
    group.add_argument("--html", action="store_true",
                       help="trends: render the HTML page")
    parser.add_argument("--out", default=None,
                        help="trends/gate: write the rendered output "
                             "to this file")
    return parser


def _emit(text, out):
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"written to {out}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def figures_main(args):
    from repro import telemetry
    from repro.__main__ import QUICK_NAMES
    from repro.experiments import ExperimentConfig, SuiteRunner
    from repro.reporting.figures import resolve_figures
    from repro.reporting.report import FigureReport

    quick = args.quick or \
        os.environ.get("REPRO_BENCH_PROFILE") == "quick"
    names = None
    if args.benchmarks:
        names = tuple(name.strip()
                      for name in args.benchmarks.split(","))
    elif quick:
        names = QUICK_NAMES
    overrides = {"names": names}
    if args.instructions:
        overrides["n_instructions"] = args.instructions
    if args.regions:
        overrides["n_regions"] = args.regions
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        fig_ids = resolve_figures(args.fig_ids)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    runner = SuiteRunner(ExperimentConfig(**overrides))
    profile = "quick" if quick else "full"
    with telemetry.span("phase.report.figures", rss=True,
                        profile=profile, figures=len(fig_ids)):
        report = FigureReport.build(runner, fig_ids, profile=profile)
    runner.release()
    telemetry.flush()
    if args.json:
        print(report.to_json())
        return 0
    out_dir = args.out_dir or os.path.join("results", "report")
    paths = report.write(out_dir)
    total = sum(s["seconds"] for s in report.sections)
    print(f"collected {len(report.sections)} figure(s) "
          f"({profile} profile) in {total:.1f}s")
    for path in paths.values():
        print(f"wrote {path}")
    return 0


def trends_main(args):
    from repro.reporting.trends import TrendReport

    report = TrendReport(args.root)
    if not report.suites:
        print(f"error: no BENCH_*.json records under {args.root}",
              file=sys.stderr)
        return 1
    if args.json:
        text = json.dumps(report.as_dict(args.profile), indent=2,
                          sort_keys=True)
    elif args.html:
        text = report.render_html(args.profile)
    else:
        text = report.render_text(args.profile)
    _emit(text, args.out)
    return 0


def gate_main(args):
    from repro.reporting import gates
    from repro.reporting.trends import BASELINE_RELPATH, \
        load_suite_entries

    import glob as _glob

    try:
        baseline = json.loads(open(
            os.path.join(args.root, BASELINE_RELPATH), "rb").read())
    except (OSError, ValueError):
        baseline = {}
    suites, regressions, notes = {}, [], []
    for path in sorted(_glob.glob(os.path.join(args.root,
                                               "BENCH_*.json"))):
        suite, entries = load_suite_entries(path)
        if not suite or not entries:
            continue
        current = entries[-1]
        profile = current.get("profile") or "full"
        base = baseline.get("profiles", {}).get(profile,
                                                {}).get(suite)
        if base is None:
            notes.append(f"{suite}: no {profile} baseline")
            suites[suite] = {"profile": profile, "checked": 0}
            continue
        bad, info = gates.check_gate(suite, current["gate"], base)
        regressions.extend(bad)
        notes.extend(info)
        suites[suite] = {"profile": profile,
                         "checked": len(current["gate"]),
                         "regressions": len(bad)}
    if args.json:
        _emit(json.dumps({
            "root": args.root,
            "suites": suites,
            "regressions": regressions,
            "notes": notes,
            "passed": not regressions,
        }, indent=2, sort_keys=True), args.out)
        return 1 if regressions else 0
    lines = []
    for note in notes:
        lines.append(f"note: {note}")
    for regression in regressions:
        lines.append(f"REGRESSION: {regression}")
    lines.append("gate passed" if not regressions else
                 f"gate FAILED: {len(regressions)} regression(s)")
    _emit("\n".join(lines), args.out)
    return 1 if regressions else 0


def report_main(argv):
    args = build_parser().parse_args(argv)
    if args.action == "figures":
        return figures_main(args)
    if args.action == "trends":
        return trends_main(args)
    return gate_main(args)
