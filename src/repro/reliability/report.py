"""Structured per-task failure reporting for the resilient pool.

``run_matrix`` used to surface a worker problem as whatever traceback
the future happened to re-raise.  The resilient pool instead records
every attempt of every dispatched task in a :class:`MatrixReport` —
what failed, how (crash / timeout / error), whether a retry recovered
it — and raises one :class:`MatrixExecutionError` carrying the report
when tasks remain failed after the retry budget, so a chaos run (or an
operator's log) sees *which* benchmarks died and why, not a raw
``BrokenProcessPool`` stack.
"""

import json
from dataclasses import dataclass, field

from repro import telemetry

#: Failure kinds a task attempt can record.
KIND_CRASH = "crash"          # worker process died (BrokenProcessPool)
KIND_TIMEOUT = "timeout"      # exceeded the per-task timeout
KIND_ERROR = "error"          # worker raised an exception
KIND_ABORTED = "aborted"      # collateral: pool torn down around it


@dataclass
class TaskFailure:
    """One failed attempt of one pool task."""

    attempt: int
    kind: str
    message: str

    def as_dict(self):
        return {"attempt": self.attempt, "kind": self.kind,
                "message": self.message}


@dataclass
class TaskRecord:
    """The dispatch history of one (benchmark, strategies) pool task."""

    benchmark: str
    strategies: tuple
    attempts: int = 0
    status: str = "pending"          # pending | completed | failed
    failures: list = field(default_factory=list)

    @property
    def recovered(self):
        """Completed, but only after at least one failed attempt."""
        return self.status == "completed" and bool(self.failures)

    def record_failure(self, kind, message):
        self.failures.append(TaskFailure(self.attempts, kind, str(message)))
        telemetry.counter(f"pool.task.{kind}")
        telemetry.event("pool.task.failure", benchmark=self.benchmark,
                        kind=kind, attempt=self.attempts)

    def as_dict(self):
        return {
            "benchmark": self.benchmark,
            "strategies": list(self.strategies),
            "attempts": self.attempts,
            "status": self.status,
            "recovered": self.recovered,
            "failures": [f.as_dict() for f in self.failures],
        }


class MatrixReport:
    """Everything the resilient pool did for one ``run_matrix`` call."""

    def __init__(self):
        self.tasks = {}              # benchmark -> TaskRecord
        self.rounds = 0
        self.pool_rebuilds = 0
        self.backoff_seconds = 0.0

    def task(self, benchmark, strategies=()):
        record = self.tasks.get(benchmark)
        if record is None:
            record = TaskRecord(benchmark, tuple(strategies))
            self.tasks[benchmark] = record
        return record

    @property
    def completed(self):
        return sorted(name for name, t in self.tasks.items()
                      if t.status == "completed")

    @property
    def failed(self):
        return sorted(name for name, t in self.tasks.items()
                      if t.status == "failed")

    @property
    def recovered(self):
        return sorted(name for name, t in self.tasks.items() if t.recovered)

    @property
    def total_failures(self):
        return sum(len(t.failures) for t in self.tasks.values())

    @property
    def failures_by_kind(self):
        """``{kind: count}`` across every attempt of every task."""
        kinds = {}
        for task in self.tasks.values():
            for failure in task.failures:
                kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
        return dict(sorted(kinds.items()))

    def as_dict(self):
        return {
            "rounds": self.rounds,
            "pool_rebuilds": self.pool_rebuilds,
            "backoff_seconds": round(self.backoff_seconds, 3),
            "completed": self.completed,
            "recovered": self.recovered,
            "failed": self.failed,
            "tasks": {name: t.as_dict()
                      for name, t in sorted(self.tasks.items())},
        }

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a report from :meth:`as_dict` output (CLI replay)."""
        report = cls()
        report.rounds = payload.get("rounds", 0)
        report.pool_rebuilds = payload.get("pool_rebuilds", 0)
        report.backoff_seconds = payload.get("backoff_seconds", 0.0)
        for name, entry in payload.get("tasks", {}).items():
            record = report.task(name, tuple(entry.get("strategies", ())))
            record.attempts = entry.get("attempts", 0)
            record.status = entry.get("status", "pending")
            record.failures = [
                TaskFailure(f.get("attempt", 0), f.get("kind", "?"),
                            f.get("message", ""))
                for f in entry.get("failures", ())
            ]
        return report

    def to_json(self, **kwargs):
        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.as_dict(), **kwargs)

    def summary(self, faults_fired=None):
        """One human line per noteworthy task.

        ``faults_fired`` (optional) is the run's total injected-fault
        count from telemetry; the pool itself doesn't observe fault
        sites, so the caller passes it in.
        """
        head = (f"pool dispatch: {len(self.tasks)} tasks, "
                f"{self.rounds} round(s), "
                f"{self.pool_rebuilds} pool rebuild(s)")
        if self.total_failures:
            kinds = ", ".join(f"{count} {kind}" for kind, count
                              in self.failures_by_kind.items())
            head += (f", {self.total_failures} failed "
                     f"attempt(s) ({kinds})")
        if faults_fired:
            head += f", {faults_fired} fault(s) fired"
        lines = [head]
        for name in self.recovered:
            task = self.tasks[name]
            kinds = ",".join(f.kind for f in task.failures)
            lines.append(f"  recovered {name} after {kinds} "
                         f"({task.attempts} attempts)")
        for name in self.failed:
            task = self.tasks[name]
            last = task.failures[-1] if task.failures else None
            cause = f"{last.kind}: {last.message}" if last else "unknown"
            lines.append(f"  FAILED {name} after {task.attempts} "
                         f"attempts ({cause})")
        return "\n".join(lines)


class MatrixExecutionError(RuntimeError):
    """Tasks remained failed after the retry budget.

    Carries the full :class:`MatrixReport` (``.report``); the message
    names each failed benchmark with its last failure, so the error is
    actionable without spelunking worker tracebacks.
    """

    def __init__(self, report):
        self.report = report
        failed = []
        for name in report.failed:
            task = report.tasks[name]
            last = task.failures[-1] if task.failures else None
            cause = f"{last.kind}: {last.message}" if last else "unknown"
            failed.append(f"{name} ({cause})")
        super().__init__(
            f"{len(report.failed)} of {len(report.tasks)} pool task(s) "
            f"failed after retries: " + "; ".join(failed))
