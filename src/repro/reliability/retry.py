"""Retry policy: exponential backoff with deterministic jitter.

The resilient pool (and anything else that retries) sleeps between
attempts; the delays grow exponentially and carry *deterministic*
jitter — a seeded hash of ``(seed, label, attempt)`` — so two processes
retrying different tasks desynchronize (no thundering herd against a
shared disk) while a replayed chaos run sleeps exactly as long as the
original did.
"""

import hashlib
import os
import time

#: Environment knobs for the resilient pool (documented in README).
ENV_TIMEOUT = "REPRO_TASK_TIMEOUT"
ENV_RETRIES = "REPRO_TASK_RETRIES"
ENV_BACKOFF = "REPRO_RETRY_BACKOFF"

DEFAULT_RETRIES = 2
DEFAULT_BACKOFF = 0.25
BACKOFF_CAP = 10.0


def _jitter(seed, label, attempt):
    """A deterministic U[0,1) draw for one retry decision."""
    token = f"retry:{seed}:{label}:{attempt}".encode()
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def backoff_delay(attempt, base=DEFAULT_BACKOFF, cap=BACKOFF_CAP,
                  seed=0, label=""):
    """Seconds to sleep before retry number ``attempt`` (1-based).

    Exponential (``base * 2**(attempt-1)``) with full multiplicative
    jitter in ``[0.5, 1.0)`` of the raw delay, capped at ``cap``.
    """
    raw = min(float(cap), float(base) * (2.0 ** (max(1, int(attempt)) - 1)))
    return raw * (0.5 + 0.5 * _jitter(seed, label, attempt))


def sleep_before_retry(attempt, base=DEFAULT_BACKOFF, cap=BACKOFF_CAP,
                       seed=0, label=""):
    """Sleep the backoff delay; returns the seconds slept."""
    delay = backoff_delay(attempt, base=base, cap=cap, seed=seed,
                          label=label)
    if delay > 0:
        time.sleep(delay)
    return delay


def _env_float(name, default):
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    value = float(raw)
    return value


def pool_timeout():
    """Per-task timeout the environment implies (None = no timeout)."""
    value = _env_float(ENV_TIMEOUT, None)
    if value is None or value <= 0:
        return None
    return value


def pool_retries():
    """Retries per failed pool task the environment implies."""
    raw = os.environ.get(ENV_RETRIES, "").strip()
    if not raw:
        return DEFAULT_RETRIES
    return max(0, int(raw))


def pool_backoff():
    """Base backoff seconds between pool retry rounds."""
    value = _env_float(ENV_BACKOFF, DEFAULT_BACKOFF)
    return max(0.0, value)


def kill_pool_workers(pool):
    """Forcibly end a pool whose task exceeded its deadline.

    ``ProcessPoolExecutor`` cannot interrupt a running call; killing the
    worker processes is the only way to reclaim a hung task.  The pool
    is broken afterwards and discarded by the caller (the dispatch loop
    rebuilds one for the retry round).  Shared by every resilient
    fan-out (the matrix runner, the parallel synthetic exporter).
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, AttributeError):
            pass
