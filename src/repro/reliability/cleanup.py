"""Scratch-directory cleanup that survives interrupts and SIGTERM.

The chunked pipelines (streamed import, synthetic generation, index
spilling) stage gigabytes in scratch directories.  Their ``finally``
blocks already clean up on exceptions — including ``KeyboardInterrupt``
— but a SIGTERM (a batch scheduler's kill, a supervisor timeout) tears
the process down without unwinding the stack, leaving orphaned spill
files behind.

This registry closes that hole: every owned scratch directory is
registered at creation and unregistered when its owner removes it; an
``atexit`` hook plus a chaining SIGTERM handler sweep whatever is still
registered when the process dies.  The handler re-raises the default
SIGTERM disposition after sweeping, so exit codes and parent-observed
signals are unchanged.
"""

import atexit
import os
import shutil
import signal
import threading

_REGISTRY = set()
_LOCK = threading.Lock()
_INSTALLED = False
_PREVIOUS_HANDLER = None


def _sweep():
    """Remove every still-registered scratch directory (idempotent)."""
    with _LOCK:
        paths = sorted(_REGISTRY)
        _REGISTRY.clear()
    for path in paths:
        shutil.rmtree(path, ignore_errors=True)


def _on_sigterm(signum, frame):
    _sweep()
    previous = _PREVIOUS_HANDLER
    if callable(previous):
        previous(signum, frame)
        return
    # Restore the default disposition and re-deliver, so the process
    # still dies *by SIGTERM* (wait status, not a plain exit code).
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def _install():
    global _INSTALLED, _PREVIOUS_HANDLER
    if _INSTALLED:
        return
    _INSTALLED = True
    atexit.register(_sweep)
    try:
        _PREVIOUS_HANDLER = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        # Not the main thread (or no signal support): atexit still
        # covers orderly interpreter shutdown.
        _PREVIOUS_HANDLER = None


def register_scratch(path):
    """Track ``path`` for sweep-on-exit; returns ``path`` unchanged."""
    with _LOCK:
        _REGISTRY.add(str(path))
    _install()
    return path


def unregister_scratch(path):
    """Stop tracking ``path`` (its owner removed it normally)."""
    with _LOCK:
        _REGISTRY.discard(str(path))


def registered_scratch():
    """Currently tracked scratch paths (sorted; for tests/diagnostics)."""
    with _LOCK:
        return sorted(_REGISTRY)
