"""Advisory inter-process file locks for the artifact store.

``flock``-based, so the kernel releases everything when a process dies —
no stale-lock recovery needed.  Readers of memory-mapped artifacts hold
the store's lock *shared* (many readers coexist, and writers publishing
new blobs share too — content-addressed publishes never conflict with
each other); destructive maintenance (``cache gc``/``clear``) asks for
it *exclusive*, so it waits for live memmaps and in-flight publishers
instead of sweeping files out from under them.

The locks are advisory and non-POSIX platforms degrade to no-ops: they
coordinate cooperating ``repro`` processes, they do not defend against
arbitrary writers in the cache directory.
"""

import os
import time

try:
    import fcntl
except ImportError:                       # non-POSIX: locks are no-ops
    fcntl = None

_POLL_SECONDS = 0.05


class FileLock:
    """One advisory lock file, shared or exclusive, with timeouts.

    Not reentrant; one acquire per instance.  Distinct instances on the
    same path conflict even within one process (``flock`` locks are per
    open file description), which is exactly what the reader-vs-gc
    coordination wants.
    """

    def __init__(self, path):
        self.path = str(path)
        self._handle = None
        self.exclusive = False

    @property
    def held(self):
        return self._handle is not None

    def acquire(self, exclusive=False, timeout=0.0):
        """Take the lock; True on success, False on timeout.

        ``timeout=0`` is a single non-blocking attempt; ``timeout=None``
        blocks indefinitely.  Without ``fcntl`` this always succeeds.
        """
        if self._handle is not None:
            raise RuntimeError(f"lock {self.path!r} already held")
        if fcntl is None:
            self._handle = object()      # placeholder: no-op platform
            self.exclusive = bool(exclusive)
            return True
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        handle = open(self.path, "a+")
        flags = fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                fcntl.flock(handle.fileno(), flags | fcntl.LOCK_NB)
                self._handle = handle
                self.exclusive = bool(exclusive)
                return True
            except OSError:
                if deadline is not None and time.monotonic() >= deadline:
                    handle.close()
                    return False
                time.sleep(_POLL_SECONDS)

    def release(self):
        """Drop the lock (idempotent)."""
        handle = self._handle
        self._handle = None
        self.exclusive = False
        if handle is None or fcntl is None:
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.release()
