"""Deterministic fault injection at the pipeline's real seams.

A :class:`FaultPlan` is a small set of rules — *which seam*, *which
failure mode*, *when to fire* — parsed from a compact spec string
(``REPRO_FAULTS`` in the environment, or :func:`inject` in code) and
evaluated with a seeded hash, so every chaos run is replayable: the same
spec produces the same faults at the same seam visits, independent of
Python hash randomization or wall-clock.

Spec grammar (clauses separated by ``;``)::

    REPRO_FAULTS = "seed=7;state=/tmp/faults;store.write:torn@p=0.5"

* ``seed=<int>`` — seeds the probabilistic draws (default 0);
* ``state=<dir>`` — a directory for cross-process fire counters, so a
  rule with ``times=k`` fires at most ``k`` times across *every*
  process sharing the plan (pool workers re-arm their per-process
  counters on each task attempt — without a state dir a ``crash`` rule
  would kill every retry forever);
* ``<site>:<mode>[@k=v[,k=v...]]`` — one rule.

Sites and their modes (:data:`SITES`):

========== =============================== ==============================
site        where it fires                  modes
========== =============================== ==============================
store.write ``DiskStore.put``/``put_stream`` ``torn`` (truncate the
                                            payload, ``frac=0.5``),
                                            ``flip`` (flip one payload
                                            bit), ``enospc``, ``eio``
store.read  ``DiskStore._read_blob``        ``eio``
reader.open ``TraceReader._open``           ``eio``
pool.task   ``run_matrix`` worker entry     ``crash`` (SIGKILL itself),
                                            ``hang`` (``seconds=30``),
                                            ``slow`` (``seconds=0.5``),
                                            ``error`` (raise)
========== =============================== ==============================

Firing parameters (all optional; default is *fire on every visit*):

* ``n=<k>`` — fire on exactly the k-th visit of the seam (1-based);
* ``after=<k>`` — fire from the k-th visit onward;
* ``p=<float>`` — fire with probability ``p`` per visit, drawn
  deterministically from ``(seed, site, mode, visit)``;
* ``times=<k>`` — fire at most ``k`` times (globally with a state dir,
  per process otherwise).

Seams are *pull*-based: production code calls
:func:`fault_point(site) <fault_point>` and gets back the firing
:class:`FaultRule` (or ``None`` — the overwhelmingly common case, a
single global-is-None check).  The seam applies the mode itself; error
modes use :meth:`FaultRule.os_error`.
"""

import errno
import hashlib
import os

from repro import telemetry

try:
    import fcntl
except ImportError:                               # non-POSIX: counters
    fcntl = None                                  # degrade to per-process

#: Injectable seams and the failure modes each understands.
SITES = {
    "store.write": ("torn", "flip", "enospc", "eio"),
    "store.read": ("eio",),
    "reader.open": ("eio",),
    "pool.task": ("crash", "hang", "slow", "error"),
}

_ERRNO = {"enospc": errno.ENOSPC, "eio": errno.EIO}


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec that cannot be parsed."""


class InjectedFault(RuntimeError):
    """Raised by ``pool.task:error`` — a worker failing loudly."""


class FaultRule:
    """One parsed ``site:mode@params`` clause of a fault plan."""

    _FIRING_KEYS = ("p", "n", "after", "times")

    def __init__(self, site, mode, params, index=0):
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r} (expected one of "
                f"{sorted(SITES)})")
        if mode not in SITES[site]:
            raise FaultSpecError(
                f"site {site!r} has no mode {mode!r} (expected one of "
                f"{SITES[site]})")
        self.site = site
        self.mode = mode
        self.params = dict(params)
        self.index = int(index)
        self.p = self._float_param("p")
        self.n = self._int_param("n")
        self.after = self._int_param("after")
        self.times = self._int_param("times")
        self.hits = 0
        self.fired = 0

    def _float_param(self, key):
        value = self.params.get(key)
        return None if value is None else float(value)

    def _int_param(self, key):
        value = self.params.get(key)
        return None if value is None else int(value)

    def param(self, key, default=None):
        """A mode-specific parameter (``frac``, ``seconds``, ...),
        coerced to the default's type when one is given."""
        value = self.params.get(key)
        if value is None:
            return default
        return type(default)(value) if default is not None else value

    def os_error(self):
        """The OSError this rule's mode injects (``eio``/``enospc``)."""
        code = _ERRNO.get(self.mode, errno.EIO)
        return OSError(code, f"injected fault: {self.site}:{self.mode}")

    def __repr__(self):
        extra = "".join(f",{k}={v}" for k, v in sorted(self.params.items()))
        return f"FaultRule({self.site}:{self.mode}{extra})"


def _uniform(seed, site, mode, index, hit):
    """A deterministic U[0,1) draw for one rule visit."""
    token = f"{seed}:{site}:{mode}:{index}:{hit}".encode()
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultPlan:
    """A seeded, replayable set of fault rules over the named seams."""

    def __init__(self, rules, seed=0, state_dir=None, spec=None):
        self.rules = list(rules)
        self.seed = int(seed)
        self.state_dir = str(state_dir) if state_dir else None
        #: The originating spec string (ships the plan to pool workers).
        self.spec = spec if spec is not None else self.to_spec()

    @classmethod
    def from_spec(cls, spec):
        """Parse a ``REPRO_FAULTS`` spec string (see module docstring)."""
        seed = 0
        state_dir = None
        rules = []
        for clause in str(spec).split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[len("seed="):])
                continue
            if clause.startswith("state="):
                state_dir = clause[len("state="):]
                continue
            if ":" not in clause:
                raise FaultSpecError(
                    f"bad fault clause {clause!r} (expected "
                    "'site:mode[@k=v,...]', 'seed=N' or 'state=DIR')")
            site, _, rest = clause.partition(":")
            mode, _, param_text = rest.partition("@")
            params = {}
            if param_text:
                for pair in param_text.split(","):
                    key, sep, value = pair.partition("=")
                    if not sep or not key:
                        raise FaultSpecError(
                            f"bad fault parameter {pair!r} in {clause!r}")
                    params[key.strip()] = value.strip()
            rules.append(FaultRule(site.strip(), mode.strip(), params,
                                   index=len(rules)))
        return cls(rules, seed=seed, state_dir=state_dir, spec=str(spec))

    def to_spec(self):
        """A spec string that re-parses to this plan."""
        clauses = [f"seed={self.seed}"]
        if self.state_dir:
            clauses.append(f"state={self.state_dir}")
        for rule in self.rules:
            clause = f"{rule.site}:{rule.mode}"
            if rule.params:
                clause += "@" + ",".join(
                    f"{k}={v}" for k, v in sorted(rule.params.items()))
            clauses.append(clause)
        return ";".join(clauses)

    # -- firing decisions ----------------------------------------------------

    def _claim_global(self, rule):
        """Atomically claim one global firing slot for ``rule``.

        Counter files live in the state dir, locked with ``flock`` so
        concurrent pool workers cannot both claim the last slot.  True
        if the rule may fire (and the slot is consumed).
        """
        os.makedirs(self.state_dir, exist_ok=True)
        path = os.path.join(
            self.state_dir,
            f"{rule.site}.{rule.mode}.{rule.index}.count")
        with open(path, "a+") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            handle.seek(0)
            raw = handle.read().strip()
            count = int(raw) if raw else 0
            if count >= rule.times:
                return False
            handle.seek(0)
            handle.truncate()
            handle.write(str(count + 1))
            return True

    def _should_fire(self, rule):
        rule.hits += 1
        if rule.n is not None and rule.hits != rule.n:
            return False
        if rule.after is not None and rule.hits < rule.after:
            return False
        if rule.p is not None and _uniform(
                self.seed, rule.site, rule.mode, rule.index,
                rule.hits) >= rule.p:
            return False
        if rule.times is not None:
            if self.state_dir is not None:
                if not self._claim_global(rule):
                    return False
            elif rule.fired >= rule.times:
                return False
        rule.fired += 1
        telemetry.counter(f"fault.fired.{rule.site}.{rule.mode}")
        telemetry.event("fault.fired", site=rule.site, mode=rule.mode,
                        visit=rule.hits)
        return True

    def check(self, site):
        """Visit ``site`` once; the firing rule, or None.

        Every rule attached to the site counts the visit (so ``n=3`` on
        two rules of one site stays aligned); the first rule that
        decides to fire wins.
        """
        fired = None
        for rule in self.rules:
            if rule.site != site:
                continue
            if self._should_fire(rule) and fired is None:
                fired = rule
        return fired

    def __repr__(self):
        return f"FaultPlan({self.to_spec()!r})"


# -- process-global plan -------------------------------------------------------

_UNSET = object()
_PLAN = _UNSET


def inject(plan_or_spec):
    """Install the process-global fault plan (None disables injection).

    Accepts a :class:`FaultPlan` or a spec string.  Returns the
    installed plan.  Pool workers call this with the parent plan's
    ``spec`` on every task attempt, re-arming per-process counters —
    use ``times=`` plus a ``state=`` dir for campaign-global limits.
    """
    global _PLAN
    if plan_or_spec is None:
        _PLAN = None
    elif isinstance(plan_or_spec, FaultPlan):
        _PLAN = plan_or_spec
    else:
        _PLAN = FaultPlan.from_spec(plan_or_spec)
    return _PLAN


def clear_plan():
    """Forget any installed plan; the next seam visit re-reads the env."""
    global _PLAN
    _PLAN = _UNSET


def active_plan():
    """The installed plan, else one parsed from ``REPRO_FAULTS``, else
    None.  The parse result is cached until :func:`clear_plan`."""
    global _PLAN
    if _PLAN is _UNSET:
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        _PLAN = FaultPlan.from_spec(spec) if spec else None
    return _PLAN


def fault_point(site):
    """Visit one seam: the firing :class:`FaultRule`, or None.

    This is the only call production seams make; with no plan installed
    it is one global load and an identity check.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.check(site)


def raise_io_fault(site):
    """Raise the injected OSError for ``site`` if an error mode fires."""
    rule = fault_point(site)
    if rule is not None and rule.mode in _ERRNO:
        raise rule.os_error()
    return rule


def visit_task_seam(name, stage, site="pool.task"):
    """One ``pool.task`` fault seam visit (worker entry / exit).

    ``crash`` SIGKILLs the worker — indistinguishable from an OOM kill
    or a batch scheduler's reaping; ``hang`` sleeps past any sane task
    timeout; ``slow`` delays but completes; ``error`` raises.  The exit
    visit models a worker dying *after* publishing its results — the
    checkpoint/resume path a resilient dispatcher recovers through
    without recomputation.  Shared by every pooled fan-out (the matrix
    runner, the parallel synthetic exporter).
    """
    rule = fault_point(site)
    if rule is None:
        return
    if rule.mode == "crash":
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    elif rule.mode == "hang":
        import time

        time.sleep(rule.param("seconds", 30.0))
    elif rule.mode == "slow":
        import time

        time.sleep(rule.param("seconds", 0.5))
    elif rule.mode == "error":
        raise InjectedFault(
            f"injected {site} error at {stage} of {name!r}")
