"""Fault-tolerant execution: injection, retries, locks, cleanup, reports.

Three cooperating layers keep large campaigns alive (ROADMAP:
"Fault-tolerant execution"):

* **Deterministic fault injection** (:mod:`repro.reliability.faults`) —
  a seedable, replayable :class:`FaultPlan` (``REPRO_FAULTS`` or
  :func:`inject`) that fires at the real seams: blob writes/reads in
  the store, container opens in the trace reader, task entry in the
  ``run_matrix`` pool.  The chaos differential harness
  (``tests/test_reliability.py``) uses it to pin the invariant that a
  faulted run either completes bit-identical to the fault-free run or
  fails with a structured, actionable error.
* **Self-healing store** — per-blob checksums verified on read,
  quarantine + transparent recomputation of corrupt artifacts, advisory
  locks (:mod:`repro.reliability.locks`) so maintenance cannot delete
  blobs under live memmaps, and ``python -m repro cache verify`` as the
  scrubber.
* **Resilient pool** — per-task timeouts, retry with exponential
  backoff + deterministic jitter (:mod:`repro.reliability.retry`),
  ``BrokenProcessPool`` recovery, checkpoint/resume from published
  store digests, and :class:`MatrixReport` /
  :class:`MatrixExecutionError` instead of raw tracebacks
  (:mod:`repro.reliability.report`).
"""

from repro.reliability.cleanup import (
    register_scratch,
    registered_scratch,
    unregister_scratch,
)
from repro.reliability.faults import (
    SITES,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    active_plan,
    clear_plan,
    fault_point,
    inject,
    raise_io_fault,
)
from repro.reliability.locks import FileLock
from repro.reliability.report import (
    MatrixExecutionError,
    MatrixReport,
    TaskFailure,
    TaskRecord,
)
from repro.reliability.retry import (
    backoff_delay,
    pool_backoff,
    pool_retries,
    pool_timeout,
    sleep_before_retry,
)

__all__ = [
    "SITES",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "FileLock",
    "InjectedFault",
    "MatrixExecutionError",
    "MatrixReport",
    "TaskFailure",
    "TaskRecord",
    "active_plan",
    "backoff_delay",
    "clear_plan",
    "fault_point",
    "inject",
    "pool_backoff",
    "pool_retries",
    "pool_timeout",
    "raise_io_fault",
    "register_scratch",
    "registered_scratch",
    "sleep_before_retry",
    "unregister_scratch",
]
