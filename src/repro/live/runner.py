"""LiveRunner: incremental strategy refinement over an unbounded feed.

The runner consumes :class:`~repro.trace.record.TraceChunk` windows from
any feed and maintains, with bounded resident memory:

* the full prefix, spilled column-by-column through a
  :class:`~repro.traceio.container.TraceStreamWriter`;
* the live index tables, folded chunk-by-chunk by
  :class:`~repro.vff.index.LiveIndexBuilder`;
* one refinable run-state per attached strategy
  (``Strategy.begin(...)``).

Every time the feed crosses a *watermark* — a whole number of
inter-region gaps — the runner seals an index epoch over the exact
prefix, swaps the workload/index proxies to the new snapshot, refines
each strategy by the regions the prefix just completed, and assembles
per-strategy :class:`~repro.sampling.results.StrategyResult`\\ s for the
watermark's :class:`~repro.sampling.plan.SamplingPlan`.

Two invariants make the estimates bit-identical to a from-scratch batch
run on the same prefix (``tests/test_live_equivalence.py``):

* **boundary alignment** — incoming chunks are split at watermark
  boundaries before anything consumes them, so snapshots cut at exactly
  ``k * gap`` instructions regardless of how the producer chunked the
  feed (chunking must be, and is, unobservable);
* **prefix stability** — every query a strategy issues for region ``j``
  is bounded by region ``j``'s coordinates (dangling watchpoints are
  censored at the region boundary in both paths), so region results
  computed against snapshot ``j`` equal the same region computed
  against any longer prefix.

Machines capture their trace/index at construction, so the runner hands
them long-lived proxies whose target is swapped at each watermark.
"""

from dataclasses import dataclass, field

from repro import telemetry
from repro.core.context import ExecutionContext, index_spill_mode
from repro.live import artifacts
from repro.live.feed import split_chunk
from repro.sampling.plan import (
    PAPER_GAP_INSTRUCTIONS,
    PAPER_REGION_INSTRUCTIONS,
    PAPER_WARMING_INSTRUCTIONS,
    SamplingPlan,
)
from repro.store.fingerprint import fingerprint_arrays
from repro.trace.record import Trace
from repro.traceio.container import TraceStreamWriter
from repro.vff.index import TraceIndex


def default_strategies():
    """Fresh instances of all four paper strategies, by name."""
    from repro.core.delorean import DeLorean
    from repro.core.naive import NaiveDirectedWarming
    from repro.sampling.coolsim import CoolSim
    from repro.sampling.smarts import Smarts

    return {
        "SMARTS": Smarts(),
        "CoolSim": CoolSim(),
        "DeLorean": DeLorean(),
        "NaiveDSW": NaiveDirectedWarming(),
    }


class _Cell:
    """Mutable holder for the current prefix snapshot."""

    __slots__ = ("value",)

    def __init__(self, value=None):
        self.value = value


class SnapshotProxy:
    """Transparent delegate to whatever snapshot the cell holds now.

    Machines, watchpoint engines and samplers capture their trace/index
    once at construction; handing them this proxy lets the runner swap
    in each watermark's sealed snapshot underneath them.
    """

    __slots__ = ("_cell",)

    def __init__(self, cell):
        object.__setattr__(self, "_cell", cell)

    def __getattr__(self, name):
        target = object.__getattribute__(self, "_cell").value
        if target is None:
            raise RuntimeError(
                "live snapshot not sealed yet (no watermark reached)")
        return getattr(target, name)

    def __repr__(self):
        return f"SnapshotProxy({object.__getattribute__(self, '_cell').value!r})"


class LiveWorkload:
    """The live feed presented as a workload.

    ``name``/``seed`` must match the batch workload they are compared
    against: both feed :func:`~repro.vff.rng.child_rng`, and a
    different name would shift every strategy's RNG stream.
    """

    #: A live feed is by definition streamed, never materialized.
    streaming = True

    def __init__(self, name="live", seed=0):
        self.name = str(name)
        self.seed = int(seed)
        self._cell = _Cell()
        self._proxy = SnapshotProxy(self._cell)

    @property
    def trace(self):
        return self._proxy

    @property
    def trace_fingerprint(self):
        """Content address of the current sealed prefix."""
        trace = self._cell.value
        if trace is None:
            return None
        from repro.traceio.container import trace_fingerprint
        return trace_fingerprint(trace)

    def release(self):
        pass

    def __repr__(self):
        trace = self._cell.value
        state = (f"{trace.n_instructions} instructions sealed"
                 if trace is not None else "no watermark yet")
        return f"LiveWorkload({self.name!r}, {state})"


class PrefixWorkload:
    """A fully materialized feed prefix, presented as a workload.

    The differential harness runs from-scratch batch strategies over
    this to pin the incremental path; ``name``/``seed`` mirror the live
    run's so both draw identical RNG streams.
    """

    streaming = False

    def __init__(self, trace, seed=0):
        self._trace = trace
        self.name = trace.name
        self.seed = int(seed)

    @property
    def trace(self):
        return self._trace

    def release(self):
        pass


@dataclass
class LiveWatermark:
    """Everything one watermark produced."""

    watermark: int                  # completed gaps
    instructions: int               # == watermark * gap
    content_fp: str                 # prefix content fingerprint
    plan: SamplingPlan
    results: dict                   # strategy name -> StrategyResult
    published: dict = field(default_factory=dict)  # kind[:name] -> digest

    def summary(self):
        return {
            "watermark": self.watermark,
            "instructions": self.instructions,
            "content_fp": self.content_fp,
            "results": {name: result.summary()
                        for name, result in self.results.items()},
        }


class LiveRunner:
    """Consume a live feed; refine strategies at every watermark."""

    def __init__(self, gap_instructions, hierarchy_config, strategies=None,
                 name="live", seed=0, store=None, spill=None,
                 region_instructions=PAPER_REGION_INSTRUCTIONS,
                 warming_instructions=PAPER_WARMING_INSTRUCTIONS,
                 paper_gap_instructions=PAPER_GAP_INSTRUCTIONS,
                 footprint_scale=1.0 / 64.0, spill_dir=None):
        self.gap_instructions = int(gap_instructions)
        self.hierarchy_config = hierarchy_config
        self.strategies = dict(strategies if strategies is not None
                               else default_strategies())
        self.region_instructions = int(region_instructions)
        self.warming_instructions = int(warming_instructions)
        self.paper_gap_instructions = int(paper_gap_instructions)
        self.footprint_scale = float(footprint_scale)
        # Validates the geometry (gap must cover region + detailed
        # warming) before the feed starts.
        self.plan_for(1)

        self.workload = LiveWorkload(name=name, seed=seed)
        self._index_cell = _Cell()
        self.store = store
        self.context = ExecutionContext(
            self.workload, index=SnapshotProxy(self._index_cell),
            store=store, seed=seed)

        mode = spill if spill is not None else index_spill_mode()
        # streaming workload: "auto" spills whenever a store is
        # available, "always" demands one, "never" keeps tables on the
        # heap (exactly the batch build_chunked/build_spilled split).
        spill_store = (store if store is not None and store.enabled
                       and mode != "never" else None)
        self.writer = TraceStreamWriter(spill_dir=spill_dir)
        self.builder = TraceIndex.appendable(store=spill_store,
                                             spill_dir=spill_dir)
        self.lineage = artifacts.live_lineage(
            self.workload.name, self.workload.seed, self.gap_instructions,
            self.region_instructions, self.warming_instructions,
            self.paper_gap_instructions, self.footprint_scale,
            hierarchy_config, self.strategies)
        self.runs = None
        self.watermark = 0
        self._n_refined = 0

    # -- plan geometry -------------------------------------------------------

    def plan_for(self, watermark):
        """The sampling plan of the ``watermark * gap`` prefix.

        Same-gap plans nest: plan ``k``'s regions are the first ``k``
        regions of any larger plan, and the paper-projection ``scale``
        is watermark-invariant — which is what lets run-state carried
        across watermarks serve every plan along the way.
        """
        watermark = int(watermark)
        if watermark <= 0:
            raise ValueError("watermark must be positive")
        return SamplingPlan(
            n_instructions=watermark * self.gap_instructions,
            n_regions=watermark,
            region_instructions=self.region_instructions,
            warming_instructions=self.warming_instructions,
            paper_gap_instructions=self.paper_gap_instructions,
            footprint_scale=self.footprint_scale,
        )

    # -- feeding -------------------------------------------------------------

    def feed(self, chunks):
        """Consume ``chunks``; yield a :class:`LiveWatermark` at every
        completed gap boundary (feed tail beyond the last boundary is
        absorbed and waits for the next one)."""
        gap = self.gap_instructions
        for chunk in chunks:
            if chunk.instr_hi == chunk.instr_lo:
                continue
            edges = range(((chunk.instr_lo // gap) + 1) * gap,
                          chunk.instr_hi, gap)
            for piece in split_chunk(chunk, edges):
                self.writer.append(piece)
                self.builder.append(piece)
                telemetry.counter("live.chunks")
                if piece.instr_hi % gap == 0:
                    yield self._advance(piece.instr_hi // gap)

    def run(self, chunks):
        """Drain the feed; the list of all watermarks reached."""
        with telemetry.span("phase.live", rss=True,
                            benchmark=self.workload.name):
            return list(self.feed(chunks))

    # -- watermark machinery -------------------------------------------------

    def _advance(self, watermark):
        with telemetry.span("phase.live.watermark", rss=True,
                            benchmark=self.workload.name):
            views = dict(self.writer.snapshot_views())
            content_fp = fingerprint_arrays(views)
            trace = Trace(name=self.workload.name, **views)
            index_key = None
            index_label = artifacts.live_label("index", self.lineage,
                                               watermark)
            if self.builder.store is not None:
                index_key = artifacts.live_key(
                    "index", self.lineage, watermark, content_fp)
            index = self.builder.seal(trace, key=index_key,
                                      label=index_label)
            self.workload._cell.value = trace
            self._index_cell.value = index

            plan = self.plan_for(watermark)
            if self.runs is None:
                self.runs = {
                    name: strategy.begin(self.context, plan,
                                         self.hierarchy_config)
                    for name, strategy in self.strategies.items()}
            for spec in plan.regions()[self._n_refined:]:
                for run in self.runs.values():
                    run.refine(spec)
                self._n_refined += 1
            results = {name: run.result(plan)
                       for name, run in self.runs.items()}
            self.watermark = watermark
            telemetry.counter("live.watermarks")

            published = self._publish(watermark, content_fp, results)
            if index_key is not None:
                published["index"] = self.store.digest(index_key)
        return LiveWatermark(
            watermark=watermark,
            instructions=watermark * self.gap_instructions,
            content_fp=content_fp,
            plan=plan,
            results=results,
            published=published,
        )

    def _publish(self, watermark, content_fp, results):
        published = {}
        if self.store is None or not self.store.enabled:
            return published
        for name, result in results.items():
            digest = self.store.save(
                artifacts.live_key("result", self.lineage, watermark,
                                   content_fp, strategy=name),
                result,
                label=artifacts.live_label("result", self.lineage,
                                           watermark))
            if digest is not None:
                published[f"result:{name}"] = digest
        for name, run in self.runs.items():
            bundle = getattr(run, "bundle", None)
            if bundle is None:
                continue
            digest = self.store.save(
                artifacts.live_key("warmup", self.lineage, watermark,
                                   content_fp, strategy=name),
                bundle(),
                label=artifacts.live_label("warmup", self.lineage,
                                           watermark))
            if digest is not None:
                published[f"warmup:{name}"] = digest
        return published

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        """Release spill files and mapped views."""
        self._index_cell.value = None
        self.workload._cell.value = None
        self.builder.close()
        self.writer.close()
        self.context.release()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
