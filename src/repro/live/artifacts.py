"""Watermark-versioned store artifacts for live runs.

Batch artifacts are addressed purely by content fingerprints; a live
run adds a second axis.  Every published artifact carries a
``(lineage, watermark)`` pair:

* the *lineage* fingerprints everything that defines the run except the
  feed's length — workload name, seed, plan geometry, hierarchy,
  strategy roster — so every watermark of one feed shares it;
* the *watermark* is the number of completed inter-region gaps, and the
  key also pins ``content_fp`` (the exact prefix bytes) so a replayed
  feed that diverges cannot alias an old artifact.

The watermark is additionally encoded into the blob *label*
(``live:<kind>:<lineage12>#<k>``) so maintenance —
:func:`sweep_superseded`, ``cache ls``/``gc`` — can group and reclaim
superseded watermarks from the disk census alone, without decoding a
single payload.
"""

import re

from repro.store.fingerprint import fingerprint

#: Artifact kinds a live run publishes per watermark.
LIVE_KINDS = ("index", "warmup", "result")

_LABEL_RE = re.compile(
    r"^live:(?P<kind>[a-z]+):(?P<lineage>[0-9a-f]{12})#(?P<wm>\d+)$")


def live_lineage(name, seed, gap_instructions, region_instructions,
                 warming_instructions, paper_gap_instructions,
                 footprint_scale, hierarchy_config, strategies):
    """Fingerprint of the run identity shared by every watermark."""
    return fingerprint({
        "artifact": "live-lineage",
        "name": str(name),
        "seed": int(seed),
        "gap_instructions": int(gap_instructions),
        "region_instructions": int(region_instructions),
        "warming_instructions": int(warming_instructions),
        "paper_gap_instructions": int(paper_gap_instructions),
        "footprint_scale": float(footprint_scale),
        "hierarchy": hierarchy_config,
        "strategies": sorted(strategies),
    })


def live_key(kind, lineage, watermark, content_fp, **extra):
    """Store key of one watermark artifact."""
    if kind not in LIVE_KINDS:
        raise ValueError(f"unknown live artifact kind {kind!r}")
    return {
        "artifact": f"live-{kind}",
        "lineage": lineage,
        "watermark": int(watermark),
        "content_fp": content_fp,
        **extra,
    }


def live_label(kind, lineage, watermark):
    """Blob label carrying the (kind, lineage, watermark) triple."""
    return f"live:{kind}:{lineage[:12]}#{int(watermark)}"


def parse_live_label(label):
    """``(kind, lineage12, watermark)`` or None for batch labels."""
    match = _LABEL_RE.match(label or "")
    if match is None:
        return None
    return (match.group("kind"), match.group("lineage"),
            int(match.group("wm")))


def watermark_census(store):
    """Live entries on disk, grouped ``(kind, lineage12) -> [(wm,
    digest, bytes), ...]`` (unsorted; from headers only)."""
    groups = {}
    for digest, header, size in store.disk.entries():
        parsed = parse_live_label(header.get("label"))
        if parsed is None:
            continue
        kind, lineage, watermark = parsed
        groups.setdefault((kind, lineage), []).append(
            (watermark, digest, size))
    return groups


def superseded_entries(store):
    """Yield ``(digest, bytes)`` of every live entry whose lineage has a
    higher watermark on disk (per kind; the top watermark survives)."""
    for entries in watermark_census(store).values():
        top = max(watermark for watermark, _, _ in entries)
        for watermark, digest, size in entries:
            if watermark < top:
                yield digest, size


def sweep_superseded(store):
    """Delete superseded watermark artifacts; ``(removed, bytes)``.

    A result/bundle/index for watermark ``k`` is strictly contained in
    its lineage's watermark ``k+1`` — the incremental path never reads
    an old watermark back, so superseded entries are pure garbage.
    """
    removed = 0
    reclaimed = 0
    for digest, size in list(superseded_entries(store)):
        if store.disk.delete(digest):
            removed += 1
            reclaimed += size
    return removed, reclaimed
