"""``python -m repro live`` — run strategies over a live trace feed.

Two modes share one incremental engine:

* ``live run`` consumes a *finite* feed to exhaustion: framed chunks
  from a pipe/file (``--feed -`` reads stdin) or an existing native
  container walked chunk-by-chunk (``--container``);
* ``live tail`` follows a container that a producer keeps appending
  (republishing atomically with a longer trace), emitting watermark
  results as the feed grows and stopping after ``--idle-timeout``
  seconds without growth.

Each completed watermark prints one line (``--json``: one JSON object
per line, schema pinned in ``tests/test_cli.py``) so downstream
consumers can react while the feed is still open.
"""

import argparse
import json
import sys

import numpy as np

from repro.caches.hierarchy import paper_hierarchy
from repro.live.feed import read_frames
from repro.live.runner import LiveRunner, default_strategies
from repro.sampling.plan import (
    PAPER_REGION_INSTRUCTIONS,
    PAPER_WARMING_INSTRUCTIONS,
)


def _jsonable(value):
    """Recursively strip numpy scalar/array types for json.dumps."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    return value


def build_live_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro live",
        description="Incremental strategy refinement over a live trace "
                    "feed, one result set per completed watermark.")
    parser.add_argument("action", choices=("run", "tail"),
                        help="run: drain a finite feed; tail: follow an "
                             "appended container until it goes idle")
    parser.add_argument("source", nargs="?", default=None,
                        help="tail: the container path (required)")
    parser.add_argument("--feed", default=None,
                        help="run: framed-chunk feed path ('-' = stdin)")
    parser.add_argument("--container", default=None,
                        help="run: walk an existing native container "
                             "instead of a framed feed")
    parser.add_argument("--gap", type=int, required=True,
                        help="model-scale inter-region gap (instructions); "
                             "a watermark completes every --gap "
                             "instructions")
    parser.add_argument("--region", type=int,
                        default=PAPER_REGION_INSTRUCTIONS,
                        help="detailed-region length (default paper 10k)")
    parser.add_argument("--warming", type=int,
                        default=PAPER_WARMING_INSTRUCTIONS,
                        help="detailed-warming length (default paper 30k)")
    parser.add_argument("--strategies", default=None,
                        help="comma-separated subset "
                             "(default SMARTS,CoolSim,DeLorean,NaiveDSW)")
    parser.add_argument("--name", default="live",
                        help="workload name (must match any batch run "
                             "this feed is compared against)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chunk", type=int, default=None,
                        help="container walk: instructions per chunk")
    parser.add_argument("--poll", type=float, default=0.05,
                        help="tail: seconds between growth polls")
    parser.add_argument("--idle-timeout", type=float, default=5.0,
                        help="tail: stop after this many seconds without "
                             "growth (<= 0 follows forever)")
    parser.add_argument("--store", default=None,
                        help="publish watermark artifacts to this store "
                             "root (default: REPRO_CACHE configuration)")
    parser.add_argument("--spill", default=None,
                        choices=("auto", "always", "never"),
                        help="index spill mode (default REPRO_INDEX_SPILL)")
    parser.add_argument("--json", action="store_true",
                        help="one JSON object per watermark on stdout")
    return parser


def _pick_strategies(spec):
    available = default_strategies()
    if spec is None:
        return available
    chosen = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token not in available:
            raise SystemExit(
                f"unknown strategy {token!r} (choose from "
                f"{', '.join(sorted(available))})")
        chosen[token] = available[token]
    if not chosen:
        raise SystemExit("no strategies selected")
    return chosen


def _emit(watermark, as_json, out):
    if as_json:
        out.write(json.dumps(_jsonable(watermark.summary()),
                             sort_keys=True) + "\n")
    else:
        parts = "  ".join(
            f"{name} cpi={result.cpi:.4f} mpki={result.mpki:.3f}"
            for name, result in sorted(watermark.results.items()))
        out.write(f"watermark {watermark.watermark:>3d}  "
                  f"{watermark.instructions} instr  "
                  f"fp {watermark.content_fp[:12]}  {parts}\n")
    out.flush()


def _open_store(args):
    from repro.store import ArtifactStore, cache_enabled_by_env, get_store
    if args.store is not None:
        return ArtifactStore(root=args.store, enabled=True)
    if cache_enabled_by_env():
        return get_store()
    return None


def live_main(argv, out=None):
    args = build_live_parser().parse_args(argv)
    out = out if out is not None else sys.stdout

    if args.action == "tail":
        if args.source is None:
            raise SystemExit("live tail requires a container path")
        from repro.traceio.reader import TraceReader
        reader = TraceReader(args.source)
        idle = args.idle_timeout if args.idle_timeout > 0 else None
        chunks = reader.tail_chunks(chunk_instructions=args.chunk,
                                    poll_interval=args.poll,
                                    idle_timeout=idle)
    elif args.container is not None:
        from repro.traceio.reader import TraceReader
        reader = TraceReader(args.container)
        chunks = reader.iter_chunks(chunk_instructions=args.chunk)
    else:
        feed = args.feed if args.feed is not None else "-"
        handle = sys.stdin.buffer if feed == "-" else open(feed, "rb")
        chunks = read_frames(handle)

    runner = LiveRunner(
        args.gap, paper_hierarchy(),
        strategies=_pick_strategies(args.strategies),
        name=args.name, seed=args.seed, store=_open_store(args),
        spill=args.spill, region_instructions=args.region,
        warming_instructions=args.warming)
    from repro import telemetry
    n_watermarks = 0
    with runner, telemetry.span("phase.live", rss=True,
                                benchmark=runner.workload.name):
        for watermark in runner.feed(chunks):
            _emit(watermark, args.json, out)
            n_watermarks += 1
    if not args.json:
        tail = runner.writer.n_instructions - (
            n_watermarks * runner.gap_instructions)
        out.write(f"{n_watermarks} watermarks, "
                  f"{runner.writer.n_instructions} instructions consumed "
                  f"({tail} past the last watermark)\n")
    return 0
