"""Online incremental warming over live trace feeds.

A *live feed* is an unbounded source of
:class:`~repro.trace.record.TraceChunk` windows: a pipe carrying framed
chunks (:mod:`repro.live.feed`), an appended native container tailed
through :class:`~repro.traceio.reader.TraceReader`, or any in-process
iterable.  :class:`~repro.live.runner.LiveRunner` consumes the feed with
bounded memory and, at every *watermark* (a whole number of inter-region
gaps), refines each attached sampling strategy by exactly the regions
the new prefix completes — producing estimates that are bit-identical
to a from-scratch batch run over the same prefix
(``tests/test_live_equivalence.py`` is the pin).

Watermark artifacts (sealed index epochs, warm-up bundles, strategy
results) are published to the artifact store under
watermark-versioned keys (:mod:`repro.live.artifacts`); ``cache gc``
reclaims the superseded ones.
"""

from repro.live.feed import (
    chunk_trace,
    prefix_trace,
    read_frames,
    split_chunk,
    write_frame,
)
from repro.live.runner import (
    LiveRunner,
    LiveWatermark,
    LiveWorkload,
    PrefixWorkload,
    default_strategies,
)

__all__ = [
    "LiveRunner",
    "LiveWatermark",
    "LiveWorkload",
    "PrefixWorkload",
    "chunk_trace",
    "default_strategies",
    "prefix_trace",
    "read_frames",
    "split_chunk",
    "write_frame",
]
