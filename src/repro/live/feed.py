"""Feed plumbing: framed chunk transport and chunk surgery.

The wire format is deliberately boring: each frame is a fixed 12-byte
header (``b"RLF1"`` + little-endian uint64 payload length) followed by
an uncompressed ``.npz`` payload holding the chunk's seven canonical
arrays plus its ``[instr_lo, instr_hi)`` window.  Length-prefixing makes
the stream safe over pipes and sockets — a reader never has to guess
where one chunk ends — and a clean EOF *between* frames terminates the
feed, while EOF *inside* a frame raises (a producer died mid-write).

The surgery helpers (:func:`split_chunk`, :func:`chunk_trace`,
:func:`prefix_trace`) cut chunks and traces at instruction boundaries
with the same ``searchsorted`` side conventions the rest of the
pipeline uses, so a feed re-chunked any which way carries byte-for-byte
the same trace.
"""

import io
import struct

import numpy as np

from repro.trace.record import Trace, TraceChunk

#: Frame magic: "Repro Live Feed", format 1.
FRAME_MAGIC = b"RLF1"

_HEADER = struct.Struct("<4sQ")

#: Canonical chunk columns, in container order.
CHUNK_FIELDS = ("kind", "mem_instr", "mem_line", "mem_pc", "mem_store",
                "branch_instr", "branch_mispred")

_CHUNK_DTYPES = {
    "kind": np.uint8,
    "mem_instr": np.int64,
    "mem_line": np.int64,
    "mem_pc": np.int32,
    "mem_store": np.bool_,
    "branch_instr": np.int64,
    "branch_mispred": np.bool_,
}


def write_frame(fp, chunk):
    """Serialize one :class:`TraceChunk` as a length-prefixed frame."""
    payload = io.BytesIO()
    np.savez(
        payload,
        instr=np.array([chunk.instr_lo, chunk.instr_hi], dtype=np.int64),
        **{name: np.asarray(getattr(chunk, name)) for name in CHUNK_FIELDS})
    data = payload.getvalue()
    fp.write(_HEADER.pack(FRAME_MAGIC, len(data)))
    fp.write(data)
    fp.flush()


def _read_exact(fp, n, *, midframe):
    chunks = []
    remaining = n
    while remaining:
        piece = fp.read(remaining)
        if not piece:
            if chunks or midframe:
                raise EOFError(
                    "live feed truncated mid-frame (producer died?)")
            return None
        chunks.append(piece)
        remaining -= len(piece)
    return b"".join(chunks)


def read_frames(fp):
    """Yield :class:`TraceChunk` frames from a byte stream until EOF.

    A clean EOF on a frame boundary ends the feed; a torn frame raises
    :class:`EOFError` so a crashed producer is loud, not a silent
    shorter trace.
    """
    while True:
        header = _read_exact(fp, _HEADER.size, midframe=False)
        if header is None:
            return
        magic, length = _HEADER.unpack(header)
        if magic != FRAME_MAGIC:
            raise ValueError(f"bad live-feed frame magic {magic!r}")
        data = _read_exact(fp, length, midframe=True)
        with np.load(io.BytesIO(data), allow_pickle=False) as npz:
            instr = npz["instr"]
            arrays = {
                name: np.asarray(npz[name], dtype=_CHUNK_DTYPES[name])
                for name in CHUNK_FIELDS}
        yield TraceChunk(instr_lo=int(instr[0]), instr_hi=int(instr[1]),
                         **arrays)


# -- chunk surgery -----------------------------------------------------------

def _window(chunk, lo, hi):
    klo, khi = lo - chunk.instr_lo, hi - chunk.instr_lo
    a_lo = int(np.searchsorted(chunk.mem_instr, lo, side="left"))
    a_hi = int(np.searchsorted(chunk.mem_instr, hi, side="left"))
    b_lo = int(np.searchsorted(chunk.branch_instr, lo, side="left"))
    b_hi = int(np.searchsorted(chunk.branch_instr, hi, side="left"))
    return TraceChunk(
        instr_lo=lo,
        instr_hi=hi,
        kind=chunk.kind[klo:khi],
        mem_instr=chunk.mem_instr[a_lo:a_hi],
        mem_line=chunk.mem_line[a_lo:a_hi],
        mem_pc=chunk.mem_pc[a_lo:a_hi],
        mem_store=chunk.mem_store[a_lo:a_hi],
        branch_instr=chunk.branch_instr[b_lo:b_hi],
        branch_mispred=chunk.branch_mispred[b_lo:b_hi],
    )


def split_chunk(chunk, edges):
    """Split ``chunk`` at the given instruction ``edges`` (views, no copy).

    Edges outside ``(instr_lo, instr_hi)`` are ignored; the returned
    pieces are contiguous and concatenate back to ``chunk`` exactly.
    """
    points = [chunk.instr_lo]
    for edge in sorted(set(int(e) for e in edges)):
        if chunk.instr_lo < edge < chunk.instr_hi:
            points.append(edge)
    points.append(chunk.instr_hi)
    return [_window(chunk, lo, hi)
            for lo, hi in zip(points[:-1], points[1:])]


def chunk_trace(trace, chunk_instructions, instr_lo=0):
    """Yield contiguous :class:`TraceChunk` windows over an in-memory
    trace (the in-process twin of ``TraceReader.iter_chunks``)."""
    chunk_instructions = max(1, int(chunk_instructions))
    n = trace.n_instructions
    for lo in range(int(instr_lo), n, chunk_instructions):
        hi = min(n, lo + chunk_instructions)
        a_lo, a_hi = trace.access_range(lo, hi)
        b_lo, b_hi = trace.branch_range(lo, hi)
        yield TraceChunk(
            instr_lo=lo,
            instr_hi=hi,
            kind=trace.kind[lo:hi],
            mem_instr=trace.mem_instr[a_lo:a_hi],
            mem_line=trace.mem_line[a_lo:a_hi],
            mem_pc=trace.mem_pc[a_lo:a_hi],
            mem_store=trace.mem_store[a_lo:a_hi],
            branch_instr=trace.branch_instr[b_lo:b_hi],
            branch_mispred=trace.branch_mispred[b_lo:b_hi],
        )


def prefix_trace(trace, n_instructions, name=None):
    """The first ``n_instructions`` of ``trace`` as a standalone Trace.

    This is the reference the differential harness compares against:
    the live runner's watermark-``k`` snapshot must equal
    ``prefix_trace(full, k * gap)`` byte for byte.
    """
    n = min(int(n_instructions), trace.n_instructions)
    a_lo, a_hi = trace.access_range(0, n)
    b_lo, b_hi = trace.branch_range(0, n)
    return Trace(
        name=name if name is not None else trace.name,
        kind=np.array(trace.kind[:n], copy=True),
        mem_instr=np.array(trace.mem_instr[a_lo:a_hi], copy=True),
        mem_line=np.array(trace.mem_line[a_lo:a_hi], copy=True),
        mem_pc=np.array(trace.mem_pc[a_lo:a_hi], copy=True),
        mem_store=np.array(trace.mem_store[a_lo:a_hi], copy=True),
        branch_instr=np.array(trace.branch_instr[b_lo:b_hi], copy=True),
        branch_mispred=np.array(trace.branch_mispred[b_lo:b_hi],
                                copy=True),
    )
