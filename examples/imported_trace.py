#!/usr/bin/env python
"""Importing an external memory trace and running DeLorean on it.

The reproduction's own workloads are synthetic, but the ``repro.traceio``
subsystem ingests real-world traces — ChampSim binary records,
Valgrind-Lackey text, or a generic CSV schema — normalizes them into the
canonical trace arrays (cacheline normalization, PC interning,
deterministic branch-outcome synthesis through the Table 1 predictor)
and persists them as streamable native containers.  Once imported, a
trace is a first-class benchmark name: the suite runner, DeLorean, the
warm-up pipeline and the DSE sweep consume it unchanged.

This example fabricates an "external" CSV trace (standing in for one you
captured with a real profiler), imports it through the library, and runs
all three warming strategies on it — once over the memory-mapped
streaming view, once fully materialized, to show both give identical
results.
"""

import os
import tempfile

from repro import SamplingPlan, TraceIndex, paper_hierarchy
from repro.experiments import ExperimentConfig, SuiteRunner
from repro.traceio import TraceLibrary, TraceReader, export_trace

#: REPRO_EXAMPLES_QUICK=1 shrinks the run for smoke tests / CI.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
N_INSTRUCTIONS = 120_000 if QUICK else 1_200_000
N_REGIONS = 3 if QUICK else 5


def fabricate_external_trace(path):
    """Stand-in for a real capture: a synthetic trace exported to CSV.

    In practice this file comes from your own tooling — a ChampSim
    tracer, ``valgrind --tool=lackey --trace-mem=yes``, or any script
    emitting the documented ``kind,addr,pc,taken`` schema.
    """
    from repro import spec2006_suite

    workload = spec2006_suite(
        n_instructions=N_INSTRUCTIONS, seed=11, names=["mcf"])[0]
    export_trace(workload.trace, path, "csv")
    return workload


def main():
    tmp = tempfile.mkdtemp(prefix="repro-traceio-")
    csv_path = os.path.join(tmp, "captured.csv")
    fabricate_external_trace(csv_path)
    print(f"external trace: {csv_path} "
          f"({os.path.getsize(csv_path):,} bytes of CSV)")

    # Import: parse + normalize once, persist as a native container.
    # (Equivalent CLI: python -m repro trace import captured.csv
    #                     --format csv --name captured)
    from repro.traceio import import_trace

    library = TraceLibrary(root=os.path.join(tmp, "traces"))
    trace = import_trace(csv_path, "csv", name="captured")
    manifest = library.add(trace, name="captured",
                           source={"path": csv_path, "format": "csv"})
    print(f"imported: {manifest['n_instructions']:,} instructions, "
          f"{manifest['n_accesses']:,} accesses, "
          f"{manifest['n_pcs']} static PCs, "
          f"fingerprint {manifest['fingerprint'][:12]}…\n")

    # The container streams: a bounded chunk budget replays the whole
    # trace without ever materializing it.
    reader = TraceReader(library.path("captured"))
    chunks = sum(1 for _ in reader.iter_chunks(max_bytes=256 * 1024))
    print(f"streaming check: mmap={reader.streaming}, "
          f"replayed in {chunks} chunks under a 256 KiB budget\n")

    # Imported names plug straight into the suite machinery: point the
    # runner at the library and "captured" works like any benchmark.
    os.environ["REPRO_TRACE_DIR"] = library.root
    config = ExperimentConfig(
        n_instructions=N_INSTRUCTIONS, n_regions=N_REGIONS,
        names=("captured",))
    runner = SuiteRunner(config)
    matrix = runner.run_matrix(("SMARTS", "CoolSim", "DeLorean"))
    reference = matrix["SMARTS"]["captured"]

    header = (f"{'strategy':10s} {'CPI':>7s} {'MPKI':>7s} {'MIPS':>9s} "
              f"{'vs SMARTS':>10s}")
    print(header)
    print("-" * len(header))
    for strategy in ("SMARTS", "CoolSim", "DeLorean"):
        result = matrix[strategy]["captured"]
        print(f"{result.strategy:10s} {result.cpi:7.3f} {result.mpki:7.2f} "
              f"{result.mips:9.1f} {result.speedup_over(reference):9.1f}x")

    # Streaming vs materialized: identical DeLorean outcomes.
    from repro.core.delorean import DeLorean

    plan = SamplingPlan(n_instructions=N_INSTRUCTIONS, n_regions=N_REGIONS)
    hierarchy = paper_hierarchy(8 << 20)
    streamed = library.workload("captured", streaming=True)
    materialized = library.workload("captured", streaming=False)
    a = DeLorean().run(streamed, plan, hierarchy,
                       index=TraceIndex(streamed.trace))
    b = DeLorean().run(materialized, plan, hierarchy,
                       index=TraceIndex(materialized.trace))
    match = (a.cpi == b.cpi and a.mpki == b.mpki)
    print(f"\nstreamed vs materialized DeLorean identical: {match}")
    assert match


if __name__ == "__main__":
    main()
