#!/usr/bin/env python
"""Design-space exploration with amortized warm-up (Section 6.4.2).

One Scout and one set of Explorers feed ten parallel Analysts, each
simulating a different LLC size.  Because reuse distance is
microarchitecture-independent, the warm-up information is collected once
and shared — the marginal cost per extra configuration is just its
Analyst.
"""

import os

from repro import SamplingPlan, spec2006_suite
from repro.caches.hierarchy import paper_hierarchy
from repro.core.dse import DesignSpaceExploration
from repro.vff.index import TraceIndex
from repro.util.units import MIB

#: REPRO_EXAMPLES_QUICK=1 shrinks the run for smoke tests / CI.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
N_INSTRUCTIONS = 600_000 if QUICK else 3_000_000
N_REGIONS = 3 if QUICK else 5
SIZES_MB = ([1, 8, 64, 512] if QUICK
            else [1, 2, 4, 8, 16, 32, 64, 128, 256, 512])


def main():
    workload = spec2006_suite(
        n_instructions=N_INSTRUCTIONS, seed=7, names=["lbm"])[0]
    plan = SamplingPlan(n_instructions=N_INSTRUCTIONS, n_regions=N_REGIONS)
    index = TraceIndex(workload.trace)
    configs = [paper_hierarchy(size_mb * MIB) for size_mb in SIZES_MB]

    report = DesignSpaceExploration().run(workload, plan, configs,
                                          index=index)

    print(f"workload: {workload.name}, {len(configs)} LLC configurations "
          f"from one warm-up\n")
    print(f"{'LLC (paper-equivalent)':>22s} {'CPI':>7s} {'MPKI':>7s}")
    for size_mb, result in zip(SIZES_MB, report.results):
        print(f"{size_mb:>19d} MB {result.cpi:7.3f} {result.mpki:7.2f}")

    print(f"\npipelined wall-clock:        {report.wall_seconds:10.1f} "
          f"modeled seconds")
    print(f"total core-seconds:          {report.core_seconds:10.1f}")
    print(f"single-config core-seconds:  "
          f"{report.single_config_core_seconds:10.1f}")
    print(f"marginal cost ({report.n_configs} Analysts):  "
          f"{report.marginal_cost:10.2f}x   "
          f"(naive rerun: {report.naive_cost:.0f}x)")
    print(f"warm-up core-seconds:        "
          f"{report.extras['warmup_core_seconds']:10.1f}")


if __name__ == "__main__":
    main()
