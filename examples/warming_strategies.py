#!/usr/bin/env python
"""Anatomy of cache warming (the paper's Figure 1 motivation).

Compares, for one workload, how much warm-up work each approach performs
per detailed region:

* functional warming (SMARTS) processes *every* access in the gap;
* randomized statistical warming (CoolSim) samples many random reuses;
* directed statistical warming (DeLorean) collects only the key reuse
  distances plus a sparse vicinity distribution.
"""

import os

from repro import (
    CoolSim,
    DeLorean,
    SamplingPlan,
    Smarts,
    TraceIndex,
    paper_hierarchy,
    spec2006_suite,
)

#: REPRO_EXAMPLES_QUICK=1 shrinks the run for smoke tests / CI.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
N_INSTRUCTIONS = 600_000 if QUICK else 2_400_000
N_REGIONS = 3 if QUICK else 4


def main():
    workload = spec2006_suite(
        n_instructions=N_INSTRUCTIONS, seed=7, names=["zeusmp"])[0]
    plan = SamplingPlan(n_instructions=N_INSTRUCTIONS, n_regions=N_REGIONS)
    hierarchy = paper_hierarchy(8 << 20)
    index = TraceIndex(workload.trace)
    trace = workload.trace

    smarts = Smarts().run(workload, plan, hierarchy, index=index)
    coolsim = CoolSim().run(workload, plan, hierarchy, index=index)
    delorean = DeLorean().run(workload, plan, hierarchy, index=index)

    accesses_per_gap = trace.n_accesses / N_REGIONS * plan.scale
    print(f"workload: {workload.name}\n")
    print("warm-up references inspected per detailed region "
          "(paper-equivalent):")
    print(f"  functional warming (SMARTS):   {accesses_per_gap:12,.0f}  "
          "(every access in the gap)")
    print(f"  randomized warming (CoolSim):  "
          f"{coolsim.extras['collected_reuse_distances'] / N_REGIONS:12,.0f}"
          "  (random reuse distances)")
    print(f"  directed warming (DeLorean):   "
          f"{delorean.extras['collected_reuse_distances'] / N_REGIONS:12,.0f}"
          "  (key reuses + vicinity)")

    print("\nwhat DeLorean's passes did:")
    print(f"  key lines/region:       {delorean.extras['key_lines_per_region']}")
    print(f"  resolved in warming:    {delorean.extras['resolved_in_warming']}")
    print(f"  resolved by Explorers:  {delorean.extras['resolved_by_explorer']}")
    print(f"  cold key lines:         {delorean.extras['cold_key_lines']}")
    print(f"  watchpoint stops:       "
          f"{delorean.extras['watchpoint_true_stops']} true + "
          f"{delorean.extras['watchpoint_false_stops']} false positives")

    print("\naccuracy and speed versus the reference:")
    for result in (smarts, coolsim, delorean):
        print(f"  {result.strategy:9s} cpi={result.cpi:6.3f} "
              f"err={100 * result.cpi_error(smarts):5.2f}%  "
              f"speed={result.speedup_over(smarts):7.1f}x SMARTS "
              f"({result.mips:.1f} MIPS)")


if __name__ == "__main__":
    main()
