#!/usr/bin/env python
"""Building custom workloads and using the statistical models directly.

Shows the substrate layer on its own: compose a workload from address
engines, profile exact reuse/stack distances, and compare the StatStack
(LRU) and StatCache (random replacement) miss-ratio models against a
simulated set-associative cache — the generality argument of the paper's
Section 4.1.
"""

import os

import numpy as np

from repro import ReuseHistogram, StatCache, StatStack
from repro.caches import CacheConfig, SetAssocCache
from repro.caches.stack import reuse_and_stack_distances
from repro.trace import (
    AddressSpace,
    MultiWorkingSetEngine,
    PhaseSpec,
    PointerChaseEngine,
    UniformWorkingSetEngine,
    WorkingSetComponent,
    build_trace,
)
from repro.util.rng import child_rng
from repro.util.units import KIB

#: REPRO_EXAMPLES_QUICK=1 shrinks the run for smoke tests / CI.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
N_INSTRUCTIONS = 120_000 if QUICK else 400_000
CACHE_LINES = (128, 512, 2048) if QUICK else (128, 256, 512, 1024,
                                              2048, 4096)


def main():
    space = AddressSpace(seed=11)
    hot = UniformWorkingSetEngine(space.allocate("hot", 96), n_pcs=6)
    heap = PointerChaseEngine(space.allocate("heap", 2048),
                              child_rng(11, "perm"), n_pcs=4)
    engine = MultiWorkingSetEngine([
        WorkingSetComponent(hot, weight=0.8, pc_base=0),
        WorkingSetComponent(heap, weight=0.2, pc_base=6),
    ])
    trace = build_trace(
        [PhaseSpec("main", N_INSTRUCTIONS, engine, mem_fraction=0.42)],
        seed=11, name="custom")
    print(f"custom workload: {trace.n_accesses:,} accesses, "
          f"{trace.unique_lines():,} unique lines "
          f"({trace.footprint_bytes() // KIB} KiB footprint)\n")

    reuse, stack = reuse_and_stack_distances(trace.mem_line)
    histogram = ReuseHistogram()
    histogram.add_many(reuse[::17])          # sparse sample, like a profiler

    statstack = StatStack(histogram)
    statcache = StatCache(histogram)

    print(f"{'lines':>7s} {'LRU sim':>9s} {'StatStack':>10s} "
          f"{'rand sim':>9s} {'StatCache':>10s}")
    for lines in CACHE_LINES:
        lru = SetAssocCache(CacheConfig(lines * 64, assoc=8, policy="lru"))
        rnd = SetAssocCache(CacheConfig(lines * 64, assoc=8, policy="random"),
                            seed=3)
        lru.warm(trace.mem_line)
        rnd.warm(trace.mem_line)
        lru_mr = lru.misses / trace.n_accesses
        rnd_mr = rnd.misses / trace.n_accesses
        print(f"{lines:7d} {lru_mr:9.4f} {statstack.miss_ratio(lines):10.4f} "
              f"{rnd_mr:9.4f} {statcache.miss_ratio(lines):10.4f}")

    exact = np.count_nonzero(
        (stack < 0) | (stack >= 1024)) / trace.n_accesses
    print(f"\nexact fully-associative LRU miss ratio @1024 lines: "
          f"{exact:.4f}")


if __name__ == "__main__":
    main()
