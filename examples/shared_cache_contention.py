#!/usr/bin/env python
"""Shared-cache contention with StatCC (the paper's Section 4.2).

Profiles two benchmarks separately (sparse reuse histograms, exactly
what DeLorean's warm-up already collects), then predicts their miss
ratios and CPIs when co-running on a shared LLC of varying size —
without ever simulating the mix.
"""

import os

import numpy as np

from repro import spec2006_suite
from repro.caches.stack import reuse_and_stack_distances
from repro.statmodel import CoRunner, ReuseHistogram, StatCC
from repro.util.units import MIB

#: REPRO_EXAMPLES_QUICK=1 shrinks the run for smoke tests / CI.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
PAIR = ("mcf", "hmmer")
SIZES_MB = [1, 16, 256] if QUICK else [1, 4, 16, 64, 256]
SCALE = 1.0 / 64.0
N_INSTRUCTIONS = 200_000 if QUICK else 600_000


def profile(name):
    workload = spec2006_suite(n_instructions=N_INSTRUCTIONS, seed=5,
                              names=[name])[0]
    trace = workload.trace
    reuse, _ = reuse_and_stack_distances(trace.mem_line)
    histogram = ReuseHistogram()
    histogram.add_many(reuse[::29])       # sparse profile
    app = CoRunner(
        name=name,
        histogram=histogram,
        mem_fraction=trace.mem_fraction(),
        base_cpi=0.35,
        miss_penalty=60.0,
    )
    workload.release()
    return app


def main():
    apps = [profile(name) for name in PAIR]
    solver = StatCC()
    print(f"mix: {' + '.join(PAIR)}\n")
    print(f"{'LLC':>7s} " + " ".join(
        f"{n:>10s}-solo {n:>10s}-mix {n:>9s}-slow" for n in PAIR))
    for size_mb in SIZES_MB:
        cache_lines = int(size_mb * MIB * SCALE) // 64
        result = solver.solve(apps, cache_lines)
        cells = []
        for k, name in enumerate(PAIR):
            cells.append(f"{result.solo_miss_ratio[k]:15.4f} "
                         f"{result.miss_ratio[k]:14.4f} "
                         f"{result.slowdown[k]:13.2f}x")
        print(f"{size_mb:4d} MB " + " ".join(cells))
    print("\n(miss ratios rise and slowdowns exceed 1x when the shared "
          "cache cannot hold both working sets)")


if __name__ == "__main__":
    main()
