#!/usr/bin/env python
"""Working-set characterization (the paper's Figure 13 use case).

Builds MPKI-vs-cache-size curves for three benchmarks, comparing the
SMARTS reference against DeLorean, whose ten cache sizes all come from a
*single* warm-up (one Scout + one Explorer set feeding ten parallel
Analysts).
"""

import os

from repro import SamplingPlan, spec2006_suite
from repro.experiments.report import ascii_chart
from repro.caches.hierarchy import paper_hierarchy
from repro.core.dse import DesignSpaceExploration
from repro.sampling.smarts import Smarts
from repro.vff.index import TraceIndex
from repro.util.units import MIB

#: REPRO_EXAMPLES_QUICK=1 shrinks the run for smoke tests / CI.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
N_INSTRUCTIONS = 600_000 if QUICK else 4_000_000
N_REGIONS = 3 if QUICK else 6
SIZES_MB = ([1, 8, 64, 512] if QUICK
            else [1, 2, 4, 8, 16, 32, 64, 128, 256, 512])
BENCHMARKS = ("lbm",) if QUICK else ("cactusADM", "leslie3d", "lbm")


def main():
    plan = SamplingPlan(n_instructions=N_INSTRUCTIONS, n_regions=N_REGIONS)
    for name in BENCHMARKS:
        workload = spec2006_suite(
            n_instructions=N_INSTRUCTIONS, seed=7, names=[name])[0]
        index = TraceIndex(workload.trace)

        reference = []
        for size_mb in SIZES_MB:
            hierarchy = paper_hierarchy(size_mb * MIB)
            result = Smarts().run(workload, plan, hierarchy, index=index)
            reference.append(result.mpki)

        configs = [paper_hierarchy(size_mb * MIB) for size_mb in SIZES_MB]
        report = DesignSpaceExploration().run(
            workload, plan, configs, index=index)
        delorean = [r.mpki for r in report.results]

        print(ascii_chart(
            SIZES_MB,
            {"SMARTS": reference, "DeLorean": delorean},
            title=f"{name}: MPKI vs LLC size (MB, paper-equivalent)",
            x_label="MB", y_label="MPKI"))
        print(f"  DeLorean swept all {len(SIZES_MB)} sizes from one warm-up "
              f"(marginal cost {report.marginal_cost:.2f}x vs "
              f"{report.naive_cost:.0f}x naive)\n")
        workload.release()


if __name__ == "__main__":
    main()
