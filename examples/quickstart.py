#!/usr/bin/env python
"""Quickstart: sampled simulation of one benchmark under three warming
strategies.

Runs the mcf-like workload under SMARTS (functional warming — the
accuracy reference), CoolSim (randomized statistical warming) and
DeLorean (directed statistical warming through time traveling), then
compares predicted CPI, MPKI and modeled simulation speed.
"""

import os

from repro import (
    CoolSim,
    DeLorean,
    SamplingPlan,
    Smarts,
    TraceIndex,
    paper_hierarchy,
    spec2006_suite,
)

#: REPRO_EXAMPLES_QUICK=1 shrinks the run for smoke tests / CI.
QUICK = os.environ.get("REPRO_EXAMPLES_QUICK", "") not in ("", "0")
N_INSTRUCTIONS = 600_000 if QUICK else 3_000_000
N_REGIONS = 3 if QUICK else 5


def main():
    workload = spec2006_suite(
        n_instructions=N_INSTRUCTIONS, seed=7, names=["mcf"])[0]
    plan = SamplingPlan(n_instructions=N_INSTRUCTIONS, n_regions=N_REGIONS)
    hierarchy = paper_hierarchy(llc_paper_bytes=8 << 20)   # 8 MiB-equivalent
    index = TraceIndex(workload.trace)                     # share the oracle

    print(f"workload: {workload.name}  "
          f"({workload.trace.n_instructions:,} instructions, "
          f"{workload.trace.n_accesses:,} memory accesses)")
    print(f"plan: {N_REGIONS} regions of "
          f"{plan.region_instructions:,} instructions, "
          f"gap {plan.gap_instructions:,} (projected to "
          f"{plan.paper_gap_instructions:,} at paper scale)\n")

    reference = Smarts().run(workload, plan, hierarchy, index=index)
    results = [reference]
    for strategy in (CoolSim(), DeLorean()):
        results.append(strategy.run(workload, plan, hierarchy, index=index))

    header = (f"{'strategy':10s} {'CPI':>7s} {'MPKI':>7s} {'MIPS':>9s} "
              f"{'vs SMARTS':>10s} {'CPI err':>8s}")
    print(header)
    print("-" * len(header))
    for result in results:
        print(f"{result.strategy:10s} {result.cpi:7.3f} {result.mpki:7.2f} "
              f"{result.mips:9.1f} {result.speedup_over(reference):9.1f}x "
              f"{100 * result.cpi_error(reference):7.2f}%")

    delorean = results[-1]
    print("\nDeLorean internals:")
    print(f"  key lines/region:      "
          f"{delorean.extras['key_lines_per_region']}")
    print(f"  explorers engaged:     {delorean.extras['explorers_engaged']}")
    print(f"  key reuses collected:  "
          f"{delorean.extras['key_reuse_distances']}")
    print(f"  warm-up vs detailed:   "
          f"{delorean.extras['warmup_vs_detailed']:.0f}x")


if __name__ == "__main__":
    main()
